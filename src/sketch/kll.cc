#include "sketch/kll.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pint {

namespace {
constexpr double kCapacityDecay = 2.0 / 3.0;
}

KllSketch::KllSketch(std::size_t k_param, std::uint64_t seed)
    : k_(k_param), rng_(seed) {
  if (k_param < 4) throw std::invalid_argument("k_param >= 4");
  compactors_.emplace_back();
}

std::size_t KllSketch::capacity(std::size_t level) const {
  // Top level has capacity k; each level below decays by 2/3, floored at 2.
  const std::size_t depth = compactors_.size() - 1 - level;
  const double cap =
      static_cast<double>(k_) * std::pow(kCapacityDecay, depth);
  return std::max<std::size_t>(2, static_cast<std::size_t>(std::ceil(cap)));
}

void KllSketch::add(double value) {
  compactors_[0].push_back(value);
  ++count_;
  if (compactors_[0].size() >= capacity(0)) compress();
}

void KllSketch::compress() {
  for (std::size_t level = 0; level < compactors_.size(); ++level) {
    if (compactors_[level].size() < capacity(level)) continue;
    if (level + 1 == compactors_.size()) compactors_.emplace_back();
    auto& cur = compactors_[level];
    std::sort(cur.begin(), cur.end());
    // Pair adjacent items and promote one of each pair (uniform parity);
    // each survivor represents two originals, keeping ranks unbiased. An
    // unpaired trailing item stays at this level.
    const std::size_t pairs = cur.size() / 2;
    const std::size_t offset = rng_.uniform_int(2);
    auto& up = compactors_[level + 1];
    for (std::size_t j = 0; j < pairs; ++j) up.push_back(cur[2 * j + offset]);
    if (cur.size() % 2 == 1) {
      const double leftover = cur.back();
      cur.clear();
      cur.push_back(leftover);
    } else {
      cur.clear();
    }
    // A now-overflowing upper level is handled by the surrounding loop.
  }
}

double KllSketch::rank(double value) const {
  double r = 0.0;
  for (std::size_t level = 0; level < compactors_.size(); ++level) {
    const double weight = std::ldexp(1.0, static_cast<int>(level));
    for (double item : compactors_[level]) {
      if (item <= value) r += weight;
    }
  }
  return r;
}

double KllSketch::quantile(double phi) const {
  if (phi < 0.0 || phi > 1.0) throw std::invalid_argument("phi in [0,1]");
  if (count_ == 0) throw std::runtime_error("quantile of empty sketch");
  // Gather (item, weight) pairs, sort by item, walk the cumulative weight.
  std::vector<std::pair<double, double>> items;
  items.reserve(retained());
  for (std::size_t level = 0; level < compactors_.size(); ++level) {
    const double weight = std::ldexp(1.0, static_cast<int>(level));
    for (double item : compactors_[level]) items.emplace_back(item, weight);
  }
  std::sort(items.begin(), items.end());
  double total = 0.0;
  for (const auto& [item, weight] : items) total += weight;
  const double target = phi * total;
  double cum = 0.0;
  for (const auto& [item, weight] : items) {
    cum += weight;
    if (cum >= target) return item;
  }
  return items.back().first;
}

void KllSketch::merge(const KllSketch& other) {
  if (other.k_ != k_) throw std::invalid_argument("k_param mismatch");
  while (compactors_.size() < other.compactors_.size())
    compactors_.emplace_back();
  for (std::size_t level = 0; level < other.compactors_.size(); ++level) {
    auto& dst = compactors_[level];
    const auto& src = other.compactors_[level];
    dst.insert(dst.end(), src.begin(), src.end());
  }
  count_ += other.count_;
  // Re-establish capacity invariants.
  bool overflow = true;
  while (overflow) {
    overflow = false;
    for (std::size_t level = 0; level < compactors_.size(); ++level) {
      if (compactors_[level].size() >= capacity(level)) {
        overflow = true;
        break;
      }
    }
    if (overflow) compress();
  }
}

std::size_t KllSketch::retained() const {
  std::size_t n = 0;
  for (const auto& c : compactors_) n += c.size();
  return n;
}

std::size_t KllSketch::size_bytes() const {
  return retained() * sizeof(double) +
         compactors_.size() * sizeof(std::vector<double>);
}

}  // namespace pint
