// KLL streaming quantile sketch (Karnin, Lang, Liberty — FOCS 2016, paper
// reference [39]).
//
// PINT's Recording Module compresses each (flow, hop) latency sub-stream
// with a KLL sketch so per-flow storage is O~(eps^-1) instead of linear in
// the number of packets (Section 4.1, Theorem 1; evaluated in Fig. 9 as
// "PINT_S").
//
// The sketch keeps a hierarchy of compactors. Level h stores items with
// weight 2^h; when a level overflows, it sorts itself and promotes a random
// half (odd or even positions) to the level above. Rank error is
// O(1/k_param) with the geometrically-decreasing capacity schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace pint {

class KllSketch {
 public:
  // k_param controls accuracy: rank error ~ 1.7/k_param. Memory is
  // O(k_param * (3/2)) items. seed drives the random compaction choices.
  explicit KllSketch(std::size_t k_param = 200,
                     std::uint64_t seed = 0x4B4C4C5345454432ULL);

  void add(double value);

  // Estimated rank of `value`: number of inserted items <= value.
  double rank(double value) const;

  // Estimated phi-quantile, phi in [0,1].
  double quantile(double phi) const;

  // Merge another sketch into this one (same k_param required).
  void merge(const KllSketch& other);

  std::size_t count() const { return count_; }      // items inserted
  std::size_t retained() const;                     // items stored
  std::size_t size_bytes() const;                   // approximate footprint
  std::size_t k_param() const { return k_; }

 private:
  std::size_t capacity(std::size_t level) const;
  void compress();

  std::size_t k_;
  std::vector<std::vector<double>> compactors_;
  std::size_t count_ = 0;
  Rng rng_;
};

}  // namespace pint
