// Classic reservoir sampling (Vitter 1985, paper reference [82]).
//
// PINT's distributed sampling (Section 4.1) is reservoir sampling evaluated
// through a global hash instead of local randomness; this header provides the
// centralized version used by the Recording Module, tests, and the improved
// PPM/AMS baselines [63].
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace pint {

template <typename T>
class Reservoir {
 public:
  explicit Reservoir(std::size_t size, std::uint64_t seed = 0xCAFEF00D)
      : size_(size), rng_(seed) {
    if (size == 0) throw std::invalid_argument("size > 0");
    sample_.reserve(size);
  }

  void add(const T& item) {
    ++seen_;
    if (sample_.size() < size_) {
      sample_.push_back(item);
      return;
    }
    const std::uint64_t j = rng_.uniform_int(seen_);
    if (j < size_) sample_[j] = item;
  }

  const std::vector<T>& sample() const { return sample_; }
  std::size_t seen() const { return seen_; }

 private:
  std::size_t size_;
  std::uint64_t seen_ = 0;
  std::vector<T> sample_;
  Rng rng_;
};

// Stateless single-slot reservoir decision: should the i'th item (1-based)
// replace the held sample? True with probability 1/i. This mirrors the
// per-switch rule "overwrite if g(packet, i) <= 1/i" and is what makes each
// hop's value end up on the packet with probability exactly 1/k.
inline bool reservoir_replace(double unit_hash, std::size_t i) {
  return unit_hash * static_cast<double>(i) < 1.0;
}

}  // namespace pint
