// Sliding-window quantile sketch.
//
// Section 4.1 notes the Recording Module can use a sliding-window sketch
// (references [5, 11, 13]) to reflect only recent measurements. We implement
// the standard block decomposition: the window of size W is split into B
// blocks, each summarized by its own KLL sketch. Queries merge the blocks
// overlapping the window; expiry drops whole blocks. The answer reflects
// between W and W + W/B most recent items (the classic (1+1/B) slack).
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>

#include "sketch/kll.h"

namespace pint {

class SlidingWindowQuantiles {
 public:
  // `window` = number of most recent items covered; `blocks` = subdivision
  // granularity (more blocks -> tighter window, more memory).
  SlidingWindowQuantiles(std::size_t window, std::size_t blocks,
                         std::size_t kll_k = 128,
                         std::uint64_t seed = 0x51D301DC0FFEEULL)
      : window_(window), block_size_(window / blocks), kll_k_(kll_k),
        seed_(seed) {
    if (blocks == 0 || window == 0 || window % blocks != 0) {
      throw std::invalid_argument(
          "window must be a positive multiple of blocks");
    }
  }

  void add(double value) {
    if (blocks_.empty() || blocks_.back().n == block_size_) {
      blocks_.push_back(Block{KllSketch(kll_k_, seed_ ^ next_block_id_++), 0});
      // Expire blocks fully outside the window.
      const std::size_t max_blocks = window_ / block_size_ + 1;
      while (blocks_.size() > max_blocks) blocks_.pop_front();
    }
    blocks_.back().sketch.add(value);
    ++blocks_.back().n;
  }

  double quantile(double phi) const {
    if (blocks_.empty()) throw std::runtime_error("empty window");
    KllSketch merged(kll_k_, seed_ ^ 0xFEEDFACEULL);
    for (const Block& b : blocks_) merged.merge(b.sketch);
    return merged.quantile(phi);
  }

  std::size_t items_covered() const {
    std::size_t n = 0;
    for (const Block& b : blocks_) n += b.n;
    return n;
  }

  // Approximate footprint: the live blocks' sketches plus the object.
  std::size_t size_bytes() const {
    std::size_t bytes = sizeof(*this);
    for (const Block& b : blocks_) {
      bytes += sizeof(Block) + b.sketch.size_bytes();
    }
    return bytes;
  }

 private:
  struct Block {
    KllSketch sketch;
    std::size_t n;
  };

  std::size_t window_;
  std::size_t block_size_;
  std::size_t kll_k_;
  std::uint64_t seed_;
  std::uint64_t next_block_id_ = 1;
  std::deque<Block> blocks_;
};

}  // namespace pint
