// SpaceSaving heavy-hitters sketch (Metwally, Agrawal, El Abbadi — ICDT 2005,
// paper reference [50]).
//
// PINT's dynamic per-flow aggregation uses SpaceSaving on the sampled
// sub-stream of each (flow, hop) to report frequent values within an additive
// eps fraction using O(eps^-1) counters (Appendix A.1, Theorem 2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace pint {

class SpaceSaving {
 public:
  // `capacity` = number of monitored values (use ceil(1/eps)).
  explicit SpaceSaving(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("capacity > 0");
  }

  void add(std::uint64_t value) {
    ++total_;
    auto it = counters_.find(value);
    if (it != counters_.end()) {
      bump(it, 1);
      return;
    }
    if (counters_.size() < capacity_) {
      counters_.emplace(value, Entry{1, 0});
      by_count_.emplace(1, value);
      return;
    }
    // Evict the current minimum and inherit its count as overestimation
    // error, per the SpaceSaving replacement rule.
    auto min_it = by_count_.begin();
    const std::uint64_t evicted = min_it->second;
    const std::uint64_t min_count = min_it->first;
    by_count_.erase(min_it);
    counters_.erase(evicted);
    counters_.emplace(value, Entry{min_count + 1, min_count});
    by_count_.emplace(min_count + 1, value);
  }

  // Estimated count; guaranteed within [true, true + total/capacity].
  std::uint64_t estimate(std::uint64_t value) const {
    auto it = counters_.find(value);
    return it == counters_.end() ? 0 : it->second.count;
  }

  // Guaranteed lower bound on the true count.
  std::uint64_t lower_bound(std::uint64_t value) const {
    auto it = counters_.find(value);
    return it == counters_.end() ? 0 : it->second.count - it->second.error;
  }

  // Values whose estimated frequency is at least `theta` of the stream.
  std::vector<std::uint64_t> frequent(double theta) const {
    std::vector<std::uint64_t> out;
    const double cut = theta * static_cast<double>(total_);
    for (const auto& [value, entry] : counters_) {
      if (static_cast<double>(entry.count) >= cut) out.push_back(value);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  std::uint64_t total() const { return total_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t monitored() const { return counters_.size(); }

  // Approximate footprint: hash-map and multimap nodes for each monitored
  // value plus the object itself.
  std::size_t size_bytes() const {
    return sizeof(*this) +
           counters_.size() * (sizeof(std::uint64_t) + sizeof(Entry) +
                               kMapNodeOverheadBytes) +
           by_count_.size() *
               (2 * sizeof(std::uint64_t) + kMapNodeOverheadBytes);
  }

 private:
  struct Entry {
    std::uint64_t count;
    std::uint64_t error;
  };

  void bump(std::unordered_map<std::uint64_t, Entry>::iterator it,
            std::uint64_t delta) {
    auto range = by_count_.equal_range(it->second.count);
    for (auto bi = range.first; bi != range.second; ++bi) {
      if (bi->second == it->first) {
        by_count_.erase(bi);
        break;
      }
    }
    it->second.count += delta;
    by_count_.emplace(it->second.count, it->first);
  }

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::unordered_map<std::uint64_t, Entry> counters_;
  std::multimap<std::uint64_t, std::uint64_t> by_count_;  // count -> value
};

}  // namespace pint
