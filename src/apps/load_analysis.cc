#include "apps/load_analysis.h"

#include <algorithm>
#include <tuple>
#include <utility>
#include <variant>

namespace pint {

void LoadAnalyzer::add(SwitchId sid, double utilization) {
  auto it = switches_.find(sid);
  if (it == switches_.end()) {
    State st;
    st.quantiles = KllSketch(64, seed_ ^ sid);
    st.ewma = utilization;
    it = switches_.emplace(sid, std::move(st)).first;
  } else {
    it->second.ewma =
        (1.0 - alpha_) * it->second.ewma + alpha_ * utilization;
  }
  it->second.quantiles.add(utilization);
  ++it->second.samples;
}

std::optional<SwitchLoad> LoadAnalyzer::load_of(SwitchId sid) const {
  auto it = switches_.find(sid);
  if (it == switches_.end()) return std::nullopt;
  SwitchLoad out;
  out.switch_id = sid;
  out.mean_utilization = it->second.ewma;
  out.p95_utilization = it->second.quantiles.quantile(0.95);
  out.samples = it->second.samples;
  return out;
}

std::vector<SwitchLoad> LoadAnalyzer::all_loads() const {
  std::vector<SwitchLoad> out;
  out.reserve(switches_.size());
  for (const auto& [sid, st] : switches_) {
    out.push_back(SwitchLoad{sid, st.ewma, st.quantiles.quantile(0.95),
                             st.samples});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.mean_utilization > b.mean_utilization;
  });
  return out;
}

double LoadAnalyzer::fairness_index() const {
  if (switches_.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& [sid, st] : switches_) {
    sum += st.ewma;
    sum_sq += st.ewma * st.ewma;
  }
  if (sum_sq == 0.0) return 1.0;
  const double n = static_cast<double>(switches_.size());
  return sum * sum / (n * sum_sq);
}

std::vector<SwitchId> LoadAnalyzer::overloaded(double factor) const {
  double total = 0.0;
  for (const auto& [sid, st] : switches_) total += st.ewma;
  const double mean =
      switches_.empty() ? 0.0 : total / static_cast<double>(switches_.size());
  std::vector<SwitchId> out;
  for (const auto& [sid, st] : switches_) {
    if (st.ewma > factor * mean) out.push_back(sid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SwitchId> LoadAnalyzer::sleep_candidates(
    double threshold, std::size_t min_samples) const {
  std::vector<SwitchId> out;
  for (const auto& [sid, st] : switches_) {
    if (st.samples >= min_samples &&
        st.quantiles.quantile(0.95) < threshold) {
      out.push_back(sid);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

LoadObserver::LoadObserver(LoadAnalyzer& analyzer, std::string util_query,
                           std::string path_query,
                           std::size_t memory_ceiling_bytes,
                           StorePolicyKind store_policy)
    : analyzer_(analyzer),
      util_query_(std::move(util_query)),
      path_query_(std::move(path_query)),
      paths_(memory_ceiling_bytes, vector_entry_bytes<SwitchId>) {
  paths_.set_policy(make_store_policy(store_policy, 0x10AD'0A11ULL));
}

void LoadObserver::on_observation(const SinkContext& ctx,
                                  std::string_view query,
                                  const Observation& obs) {
  if (query != util_query_) return;
  const auto* sample = std::get_if<HopSampleObservation>(&obs);
  if (sample == nullptr) return;
  // refresh(): attributing a sample keeps the flow's path resident under a
  // memory ceiling; unknown (or evicted) flows stay unattributed.
  const std::vector<SwitchId>* path = paths_.refresh(ctx.flow);
  if (path == nullptr || sample->hop == 0 || sample->hop > path->size()) {
    ++unattributed_;
    return;
  }
  analyzer_.add((*path)[sample->hop - 1], sample->value);
}

void LoadObserver::on_path_decoded(const SinkContext& ctx,
                                   std::string_view query,
                                   const std::vector<SwitchId>& path) {
  if (query != path_query_) return;
  // Forced put: a path decodes once per decoder residency, so an
  // admit-on-second-sight policy would shed every flow. The flow already
  // proved itself by decoding; the policy still drives eviction order.
  std::ignore = paths_.put(ctx.flow, path);
}

}  // namespace pint
