// Path conformance & routing-misconfiguration checking (paper Table 2,
// "Static per-flow aggregation" rows; references [45, 69, 72, 73]).
//
// A policy constrains which paths a flow may take: required waypoints (e.g.
// a firewall), forbidden switches, and an optional expected path. The checker
// consumes PINT's (possibly partially) decoded path and returns a verdict —
// including early verdicts: a violation can often be proven from a partial
// decode (a forbidden switch resolved at any hop), long before the full path
// is known.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "coding/hashed_decoder.h"
#include "common/types.h"
#include "pint/sink_report.h"

namespace pint {

struct PathPolicy {
  // Switches that must appear somewhere on the path.
  std::vector<SwitchId> required_waypoints;
  // Switches that must not appear.
  std::unordered_set<SwitchId> forbidden;
  // If set, the path must equal this exactly (routing misconfiguration
  // check).
  std::optional<std::vector<SwitchId>> expected_path;
};

enum class Conformance : std::uint8_t {
  kConformant,      // fully decoded and satisfies the policy
  kViolation,       // proven violation (possibly from a partial decode)
  kUndetermined,    // not enough hops decoded yet
};

struct ConformanceReport {
  Conformance verdict = Conformance::kUndetermined;
  // First offending hop (1-based) for violations, 0 otherwise.
  HopIndex offending_hop = 0;
  // Human-readable reason.
  const char* reason = "";
};

class PathConformanceChecker {
 public:
  explicit PathConformanceChecker(PathPolicy policy);

  // Evaluate against a decoder's current (partial) knowledge.
  ConformanceReport check(const HashedPathDecoder& decoder,
                          unsigned path_length) const;

  // Evaluate a fully known path (e.g. from classic INT).
  ConformanceReport check_full(const std::vector<SwitchId>& path) const;

 private:
  PathPolicy policy_;
};

/// Subscribes conformance checking to a PintFramework: each flow's path is
/// checked against the policy the moment `path_query` finishes decoding it;
/// verdicts accumulate in verdicts(). Not internally synchronized — in a
/// sharded/fan-in deployment subscribe via ShardedSink::add_observer or a
/// FanInCollector.
class ConformanceObserver : public SinkObserver {
 public:
  ConformanceObserver(PathPolicy policy, std::string path_query);

  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override;

  const std::vector<std::pair<std::uint64_t, ConformanceReport>>& verdicts()
      const {
    return verdicts_;
  }
  std::size_t violations() const;

 private:
  PathConformanceChecker checker_;
  std::string query_;
  std::vector<std::pair<std::uint64_t, ConformanceReport>> verdicts_;
};

}  // namespace pint
