#include "apps/anomaly_detection.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <variant>

namespace pint {

LatencyAnomalyDetector::LatencyAnomalyDetector(unsigned k,
                                               AnomalyConfig config)
    : config_(config), hops_(k) {
  if (k == 0) throw std::invalid_argument("k > 0");
}

std::optional<AnomalyEvent> LatencyAnomalyDetector::add(HopIndex hop,
                                                        double latency) {
  if (hop == 0 || hop > hops_.size())
    throw std::out_of_range("hop out of range");
  HopState& st = hops_[hop - 1];

  // Warmup: learn mean/variance only.
  if (st.n < config_.warmup) {
    ++st.n;
    const double delta = latency - st.mean;
    st.mean += delta / static_cast<double>(st.n);
    st.m2 += delta * (latency - st.mean);
    return std::nullopt;
  }

  const double sigma = std::max(st.stddev(), 1e-9);
  // Winsorize at +-4 sigma: one extreme sample (a heavy-tail burst) cannot
  // spike the accumulator, while a sustained level shift still accumulates
  // its clipped magnitude every sample.
  const double z =
      std::clamp((latency - st.mean) / sigma, -4.0, 4.0);
  st.cusum_up = std::max(0.0, st.cusum_up + z - config_.drift_allowance);
  st.cusum_down = std::max(0.0, st.cusum_down - z - config_.drift_allowance);

  // Keep refining the baseline with post-warmup samples (weight 1/n), so
  // heavy-tailed noise is absorbed into sigma instead of accumulating as
  // false drift; a genuine level shift still outruns the slow adaptation.
  ++st.n;
  const double delta = latency - st.mean;
  st.mean += delta / static_cast<double>(st.n);
  st.m2 += delta * (latency - st.mean);

  if (st.cusum_up > config_.threshold || st.cusum_down > config_.threshold) {
    AnomalyEvent ev;
    ev.hop = hop;
    ev.upward = st.cusum_up > st.cusum_down;
    ev.magnitude = std::max(st.cusum_up, st.cusum_down);
    // Re-baseline so subsequent regime is the new normal.
    st = HopState{};
    return ev;
  }
  return std::nullopt;
}

double LatencyAnomalyDetector::baseline_mean(HopIndex hop) const {
  if (hop == 0 || hop > hops_.size())
    throw std::out_of_range("hop out of range");
  return hops_[hop - 1].mean;
}

AnomalyObserver::AnomalyObserver(std::string latency_query,
                                 AnomalyConfig config,
                                 std::size_t memory_ceiling_bytes,
                                 StorePolicyKind store_policy)
    : query_(std::move(latency_query)), config_(config),
      detectors_(memory_ceiling_bytes, [](const LatencyAnomalyDetector& d) {
        return d.approx_bytes();
      }) {
  detectors_.set_policy(make_store_policy(store_policy, 0xA70'4A11ULL));
}

void AnomalyObserver::on_observation(const SinkContext& ctx,
                                     std::string_view query,
                                     const Observation& obs) {
  if (query != query_ || ctx.path_length == 0) return;
  const auto* sample = std::get_if<HopSampleObservation>(&obs);
  if (sample == nullptr) return;
  if (sample->hop == 0 || sample->hop > ctx.path_length) return;
  // Admission-aware: a policy that sheds this (non-resident) flow costs no
  // detector; the store counts the rejection.
  LatencyAnomalyDetector* detector = detectors_.try_touch(ctx.flow, [&] {
    return LatencyAnomalyDetector(ctx.path_length, config_);
  });
  if (detector == nullptr) return;
  if (const auto event = detector->add(sample->hop, sample->value)) {
    events_.push_back(FlowAnomaly{ctx.flow, *event});
  }
}

}  // namespace pint
