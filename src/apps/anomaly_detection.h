// Real-time anomaly detection (paper Table 2 row; references [9, 66, 86]):
// "detect network events in real-time by noticing a change in the hop
// latency" (Section 3.2).
//
// Per-hop two-sided CUSUM change detector over the latency samples that
// PINT's dynamic aggregation delivers. CUSUM accumulates deviations from a
// running mean; an alarm fires when the accumulated drift exceeds
// `threshold` standard deviations, after which the detector re-baselines.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "pint/recording_store.h"
#include "pint/sink_report.h"

namespace pint {

struct AnomalyConfig {
  double drift_allowance = 0.5;  // CUSUM slack, in std-devs
  double threshold = 8.0;        // alarm level, in std-devs
  std::size_t warmup = 64;       // samples to establish the baseline
};

struct AnomalyEvent {
  HopIndex hop = 0;
  bool upward = false;   // latency increased vs decreased
  double magnitude = 0;  // accumulated CUSUM at alarm time (std-devs)
};

class LatencyAnomalyDetector {
 public:
  explicit LatencyAnomalyDetector(unsigned k, AnomalyConfig config = {});

  std::optional<AnomalyEvent> add(HopIndex hop, double latency);

  double baseline_mean(HopIndex hop) const;

  /// Approximate footprint (for RecordingStore accounting).
  std::size_t approx_bytes() const {
    return sizeof(*this) + hops_.capacity() * sizeof(HopState);
  }

 private:
  struct HopState {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double cusum_up = 0.0;
    double cusum_down = 0.0;

    double stddev() const {
      return n > 1 ? std::sqrt(m2 / static_cast<double>(n - 1)) : 0.0;
    }
  };

  AnomalyConfig config_;
  std::vector<HopState> hops_;
};

/// Subscribes per-flow anomaly detection to a PintFramework: every dynamic
/// per-flow sample of `latency_query` feeds a per-flow CUSUM detector (sized
/// to the flow's path length on first sight); fired events accumulate in
/// events(). `memory_ceiling_bytes` bounds the detectors in an LRU
/// RecordingStore (0 = unbounded): least-recently-sampled flows are evicted
/// and re-baseline from scratch if they return. `store_policy` swaps the
/// store's admission/eviction policy (pint/policy.h) — e.g. kDoorkeeper
/// sheds one-packet mice before they cost a detector; shed samples count in
/// `detectors().admissions_rejected()`. Not internally synchronized
/// — in a sharded/fan-in deployment subscribe via ShardedSink::add_observer
/// or a FanInCollector, both of which serialize delivery.
class AnomalyObserver : public SinkObserver {
 public:
  explicit AnomalyObserver(std::string latency_query, AnomalyConfig config = {},
                           std::size_t memory_ceiling_bytes = 0,
                           StorePolicyKind store_policy = StorePolicyKind::kLru);

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override;

  struct FlowAnomaly {
    std::uint64_t flow = 0;
    AnomalyEvent event;
  };
  const std::vector<FlowAnomaly>& events() const { return events_; }
  std::size_t flows_tracked() const { return detectors_.flows(); }
  const RecordingStore<LatencyAnomalyDetector>& detectors() const {
    return detectors_;
  }

 private:
  std::string query_;
  AnomalyConfig config_;
  RecordingStore<LatencyAnomalyDetector> detectors_;
  std::vector<FlowAnomaly> events_;
};

}  // namespace pint
