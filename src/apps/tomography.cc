#include "apps/tomography.h"

#include <algorithm>
#include <tuple>
#include <utility>
#include <variant>

namespace pint {

void QueueTomography::register_flow(std::uint64_t flow_key,
                                    std::vector<SwitchId> path) {
  // Registration cares about the insertion, not the stored reference.
  // Forced put: paths register once per decode, so an admit-on-second-
  // sight policy would shed every flow; the policy still drives eviction.
  std::ignore = flows_.put(flow_key, std::move(path));
}

void QueueTomography::add_sample(std::uint64_t flow_key, HopIndex hop,
                                 double queue_depth) {
  // refresh(): an actively-sampling flow keeps its path resident under a
  // memory ceiling, but an unknown (or evicted) flow is never re-created.
  const std::vector<SwitchId>* path = flows_.refresh(flow_key);
  if (path == nullptr || hop == 0 || hop > path->size()) {
    ++dropped_;
    return;
  }
  const SwitchId sid = (*path)[hop - 1];
  auto it = switches_.find(sid);
  if (it == switches_.end()) {
    State st;
    st.sketch = KllSketch(64, seed_ ^ sid);
    it = switches_.emplace(sid, std::move(st)).first;
  }
  it->second.sketch.add(queue_depth);
  ++it->second.samples;
}

std::optional<double> QueueTomography::queue_quantile(SwitchId sid,
                                                      double phi) const {
  auto it = switches_.find(sid);
  if (it == switches_.end() || it->second.samples == 0) return std::nullopt;
  return it->second.sketch.quantile(phi);
}

std::vector<QueueTomography::HotSpot> QueueTomography::hottest(
    std::size_t top_n) const {
  std::vector<HotSpot> out;
  out.reserve(switches_.size());
  for (const auto& [sid, st] : switches_) {
    out.push_back(HotSpot{sid, st.sketch.quantile(0.5), st.samples});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.median_queue > b.median_queue;
  });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

TomographyObserver::TomographyObserver(QueueTomography& tomography,
                                       std::string sample_query,
                                       std::string path_query)
    : tomography_(tomography),
      sample_query_(std::move(sample_query)),
      path_query_(std::move(path_query)) {}

void TomographyObserver::on_observation(const SinkContext& ctx,
                                        std::string_view query,
                                        const Observation& obs) {
  if (query != sample_query_) return;
  if (const auto* sample = std::get_if<HopSampleObservation>(&obs)) {
    tomography_.add_sample(ctx.flow, sample->hop, sample->value);
  }
}

void TomographyObserver::on_path_decoded(const SinkContext& ctx,
                                         std::string_view query,
                                         const std::vector<SwitchId>& path) {
  if (query != path_query_) return;
  tomography_.register_flow(ctx.flow, path);
}

}  // namespace pint
