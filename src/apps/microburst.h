// Congestion analysis / microburst detection (paper Table 2, "Congestion
// Analysis" row; references [17, 38, 57]).
//
// Diagnoses short-lived congestion events from PINT's dynamic per-flow
// aggregation of queue occupancy: each hop keeps a long-term baseline
// (streaming median via KLL) and a short sliding window; a microburst is a
// window quantile that exceeds the baseline by a configurable factor.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "pint/recording_store.h"
#include "pint/sink_report.h"
#include "sketch/kll.h"
#include "sketch/sliding_window.h"

namespace pint {

struct MicroburstConfig {
  std::size_t window = 128;       // samples in the "recent" window
  std::size_t window_blocks = 8;
  double detection_quantile = 0.9;
  double burst_factor = 4.0;      // recent q90 > factor * baseline median
  std::size_t min_baseline = 256; // samples before detection arms
  // Absolute floor the recent quantile must also clear before an event
  // fires (0 = disabled). burst_factor alone is scale-free: a flow whose
  // baseline is a near-empty queue trips the ratio on tiny natural
  // fluctuations. A floor in queue-occupancy units anchors "burst" to a
  // magnitude that actually threatens the buffer.
  double min_queue = 0.0;
};

struct MicroburstEvent {
  HopIndex hop = 0;
  double recent_quantile = 0.0;
  double baseline_median = 0.0;
};

class MicroburstDetector {
 public:
  MicroburstDetector(unsigned k, MicroburstConfig config = {},
                     std::uint64_t seed = 0xB0257);

  // Feed one (hop, queue occupancy) sample; returns an event if this sample
  // pushed the hop over the burst threshold.
  std::optional<MicroburstEvent> add(HopIndex hop, double queue_occupancy);

  double baseline_median(HopIndex hop) const;
  std::size_t samples(HopIndex hop) const { return counts_.at(hop - 1); }

  /// Approximate footprint (for RecordingStore accounting).
  std::size_t approx_bytes() const {
    std::size_t bytes =
        sizeof(*this) + counts_.capacity() * sizeof(std::size_t);
    for (const KllSketch& sketch : baseline_) bytes += sketch.size_bytes();
    for (const SlidingWindowQuantiles& win : recent_) bytes += win.size_bytes();
    return bytes;
  }

 private:
  MicroburstConfig config_;
  std::vector<KllSketch> baseline_;
  std::vector<SlidingWindowQuantiles> recent_;
  std::vector<std::size_t> counts_;
};

/// Subscribes microburst detection to a PintFramework: every dynamic
/// per-flow sample of `queue_query` (queue occupancy) feeds a per-flow
/// detector sized to the flow's path length; fired events accumulate in
/// events(). `memory_ceiling_bytes` bounds the detectors in an LRU
/// RecordingStore (0 = unbounded); evicted flows restart their baselines if
/// they return. `store_policy` swaps the store's admission/eviction policy
/// (pint/policy.h); shed samples count in
/// `detectors().admissions_rejected()`. Not internally synchronized — in a
/// sharded/fan-in deployment subscribe via ShardedSink::add_observer or a
/// FanInCollector.
class MicroburstObserver : public SinkObserver {
 public:
  explicit MicroburstObserver(std::string queue_query,
                              MicroburstConfig config = {},
                              std::uint64_t seed = 0xB0257,
                              std::size_t memory_ceiling_bytes = 0,
                              StorePolicyKind store_policy =
                                  StorePolicyKind::kLru);

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override;

  struct FlowBurst {
    std::uint64_t flow = 0;
    MicroburstEvent event;
  };
  const std::vector<FlowBurst>& events() const { return events_; }
  std::size_t flows_tracked() const { return detectors_.flows(); }
  const RecordingStore<MicroburstDetector>& detectors() const {
    return detectors_;
  }

 private:
  std::string query_;
  MicroburstConfig config_;
  std::uint64_t seed_;
  RecordingStore<MicroburstDetector> detectors_;
  std::vector<FlowBurst> events_;
};

}  // namespace pint
