// Congestion analysis / microburst detection (paper Table 2, "Congestion
// Analysis" row; references [17, 38, 57]).
//
// Diagnoses short-lived congestion events from PINT's dynamic per-flow
// aggregation of queue occupancy: each hop keeps a long-term baseline
// (streaming median via KLL) and a short sliding window; a microburst is a
// window quantile that exceeds the baseline by a configurable factor.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "sketch/kll.h"
#include "sketch/sliding_window.h"

namespace pint {

struct MicroburstConfig {
  std::size_t window = 128;       // samples in the "recent" window
  std::size_t window_blocks = 8;
  double detection_quantile = 0.9;
  double burst_factor = 4.0;      // recent q90 > factor * baseline median
  std::size_t min_baseline = 256; // samples before detection arms
};

struct MicroburstEvent {
  HopIndex hop = 0;
  double recent_quantile = 0.0;
  double baseline_median = 0.0;
};

class MicroburstDetector {
 public:
  MicroburstDetector(unsigned k, MicroburstConfig config = {},
                     std::uint64_t seed = 0xB0257);

  // Feed one (hop, queue occupancy) sample; returns an event if this sample
  // pushed the hop over the burst threshold.
  std::optional<MicroburstEvent> add(HopIndex hop, double queue_occupancy);

  double baseline_median(HopIndex hop) const;
  std::size_t samples(HopIndex hop) const { return counts_.at(hop - 1); }

 private:
  MicroburstConfig config_;
  std::vector<KllSketch> baseline_;
  std::vector<SlidingWindowQuantiles> recent_;
  std::vector<std::size_t> counts_;
};

}  // namespace pint
