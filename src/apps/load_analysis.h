// Load imbalance, utilization-aware routing support, and power management
// (paper Table 2 rows; references [2, 31, 41, 42, 45, 65, 73]).
//
// Network-wide aggregation of (switch, utilization) samples harvested from
// PINT's dynamic per-flow aggregation: per-switch EWMA + quantile state
// supports three consumers:
//   * load imbalance  — which switches carry disproportionate traffic,
//   * routing hints   — per-switch congestion scores for load-aware routing,
//   * power management — persistently under-utilized switches (ElasticTree-
//     style consolidation candidates).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "pint/recording_store.h"
#include "pint/sink_report.h"
#include "sketch/kll.h"

namespace pint {

struct SwitchLoad {
  SwitchId switch_id = 0;
  double mean_utilization = 0.0;
  double p95_utilization = 0.0;
  std::size_t samples = 0;
};

class LoadAnalyzer {
 public:
  explicit LoadAnalyzer(double ewma_alpha = 0.05, std::uint64_t seed = 0x10AD)
      : alpha_(ewma_alpha), seed_(seed) {}

  void add(SwitchId sid, double utilization);

  std::optional<SwitchLoad> load_of(SwitchId sid) const;
  std::vector<SwitchLoad> all_loads() const;  // sorted by mean desc

  // Jain's fairness index over per-switch mean utilizations: 1 = perfectly
  // balanced, 1/n = maximally imbalanced.
  double fairness_index() const;

  // Switches whose mean utilization exceeds `factor` x the network mean.
  std::vector<SwitchId> overloaded(double factor = 2.0) const;

  // Power management: switches whose p95 utilization is below `threshold`
  // with at least `min_samples` observations.
  std::vector<SwitchId> sleep_candidates(double threshold,
                                         std::size_t min_samples = 100) const;

 private:
  struct State {
    double ewma = 0.0;
    KllSketch quantiles{64};
    std::size_t samples = 0;
  };

  double alpha_;
  std::uint64_t seed_;
  std::unordered_map<SwitchId, State> switches_;
};

/// Subscribes a LoadAnalyzer to a PintFramework: decoded paths of
/// `path_query` teach the observer each flow's hop->switch mapping; dynamic
/// per-flow samples of `util_query` (a utilization metric) are then re-keyed
/// to the switch that produced them. Samples arriving before the flow's path
/// decodes are counted in unattributed(). `memory_ceiling_bytes` bounds the
/// flow->path registry in an LRU RecordingStore (0 = unbounded); samples of
/// evicted flows count as unattributed until the path decodes again.
/// `store_policy` swaps the registry's eviction policy (pint/policy.h);
/// admission verdicts are bypassed because a path registers exactly once
/// per decode — a flow that decoded already proved itself — but a
/// frequency policy (kTinyLfu) still retains hot flows' paths over
/// one-off mice at eviction time. Both queries must use the same flow
/// definition. Not internally synchronized — in a sharded/fan-in
/// deployment subscribe via ShardedSink::add_observer or a FanInCollector.
class LoadObserver : public SinkObserver {
 public:
  LoadObserver(LoadAnalyzer& analyzer, std::string util_query,
               std::string path_query, std::size_t memory_ceiling_bytes = 0,
               StorePolicyKind store_policy = StorePolicyKind::kLru);

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override;
  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override;

  std::size_t unattributed() const { return unattributed_; }
  const RecordingStore<std::vector<SwitchId>>& path_store() const {
    return paths_;
  }

 private:
  LoadAnalyzer& analyzer_;
  std::string util_query_;
  std::string path_query_;
  RecordingStore<std::vector<SwitchId>> paths_;
  std::size_t unattributed_ = 0;
};

}  // namespace pint
