// Network tomography (paper Table 2 row; reference [26], SIMON):
// reconstruct network-wide queue state from per-flow PINT measurements.
//
// Many flows each sample (hop -> queue occupancy) on their own paths; since
// the decoder knows each flow's switch-level path (from path tracing or the
// routing table), samples can be re-keyed from (flow, hop index) to the
// actual switch. Aggregating across flows yields a queue-occupancy map of
// the whole network and exposes the hot spots, without any switch keeping
// per-flow state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "pint/recording_store.h"
#include "pint/sink_report.h"
#include "sketch/kll.h"

namespace pint {

class QueueTomography {
 public:
  // `memory_ceiling_bytes` bounds the per-flow path registry (LRU
  // RecordingStore; 0 = unbounded). Per-switch state is bounded by the
  // network size and is never evicted. Samples from evicted flows count as
  // dropped until the flow's path is registered again. `store_policy` swaps
  // the registry's eviction policy (pint/policy.h); admission verdicts are
  // bypassed (paths register once per decode, so admit-on-second-sight
  // would shed everything) but a frequency policy still protects hot
  // flows' paths at eviction time.
  explicit QueueTomography(std::uint64_t seed = 0x70406,
                           std::size_t memory_ceiling_bytes = 0,
                           StorePolicyKind store_policy = StorePolicyKind::kLru)
      : seed_(seed),
        flows_(memory_ceiling_bytes, vector_entry_bytes<SwitchId>) {
    flows_.set_policy(make_store_policy(store_policy, seed ^ 0x704'0A11ULL));
  }

  // Register a flow's switch-level path so (flow, hop) samples re-key.
  void register_flow(std::uint64_t flow_key, std::vector<SwitchId> path);

  // One dynamic-aggregation sample from a flow: hop index + queue depth.
  // Unknown flows or out-of-range hops are counted and dropped. A sample
  // refreshes its flow's recency in the bounded registry.
  void add_sample(std::uint64_t flow_key, HopIndex hop, double queue_depth);

  // Per-switch queue quantile, if the switch has samples.
  std::optional<double> queue_quantile(SwitchId sid, double phi) const;

  // Switches ranked by median queue depth (descending), with sample counts.
  struct HotSpot {
    SwitchId switch_id;
    double median_queue;
    std::size_t samples;
  };
  std::vector<HotSpot> hottest(std::size_t top_n) const;

  std::size_t dropped_samples() const { return dropped_; }
  std::size_t switches_observed() const { return switches_.size(); }
  std::size_t flows_registered() const { return flows_.flows(); }
  const RecordingStore<std::vector<SwitchId>>& flow_store() const {
    return flows_;
  }

 private:
  struct State {
    KllSketch sketch{64};
    std::size_t samples = 0;
  };

  std::uint64_t seed_;
  RecordingStore<std::vector<SwitchId>> flows_;
  std::unordered_map<SwitchId, State> switches_;
  std::size_t dropped_ = 0;
};

/// Subscribes a QueueTomography to a PintFramework: decoded paths of
/// `path_query` register flows; dynamic per-flow samples of `sample_query`
/// (e.g. a queue-occupancy query) become tomography samples. Register via
/// PintFramework::Builder::add_observer() — no framework internals touched.
/// Both queries must use the same flow definition. Not internally
/// synchronized — in a sharded/fan-in deployment subscribe via
/// ShardedSink::add_observer or a FanInCollector.
class TomographyObserver : public SinkObserver {
 public:
  TomographyObserver(QueueTomography& tomography, std::string sample_query,
                     std::string path_query);

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override;
  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override;

 private:
  QueueTomography& tomography_;
  std::string sample_query_;
  std::string path_query_;
};

}  // namespace pint
