#include "apps/path_conformance.h"

#include <algorithm>

namespace pint {

PathConformanceChecker::PathConformanceChecker(PathPolicy policy)
    : policy_(std::move(policy)) {}

ConformanceReport PathConformanceChecker::check(
    const HashedPathDecoder& decoder, unsigned path_length) const {
  // Violations provable from resolved hops alone.
  for (HopIndex i = 1; i <= path_length; ++i) {
    const auto v = decoder.value_at(i);
    if (!v.has_value()) continue;
    const auto sid = static_cast<SwitchId>(*v);
    if (policy_.forbidden.contains(sid)) {
      return {Conformance::kViolation, i, "forbidden switch on path"};
    }
    if (policy_.expected_path.has_value()) {
      const auto& exp = *policy_.expected_path;
      if (i > exp.size() || exp[i - 1] != sid) {
        return {Conformance::kViolation, i,
                "decoded hop differs from expected route"};
      }
    }
  }
  if (!decoder.complete()) {
    return {Conformance::kUndetermined, 0, "path not fully decoded"};
  }
  return check_full([&] {
    std::vector<SwitchId> path;
    for (std::uint64_t v : decoder.path())
      path.push_back(static_cast<SwitchId>(v));
    return path;
  }());
}

ConformanceReport PathConformanceChecker::check_full(
    const std::vector<SwitchId>& path) const {
  for (HopIndex i = 1; i <= path.size(); ++i) {
    if (policy_.forbidden.contains(path[i - 1])) {
      return {Conformance::kViolation, i, "forbidden switch on path"};
    }
  }
  if (policy_.expected_path.has_value() && path != *policy_.expected_path) {
    // Find the first divergence for the report.
    const auto& exp = *policy_.expected_path;
    HopIndex hop = 1;
    while (hop <= path.size() && hop <= exp.size() &&
           path[hop - 1] == exp[hop - 1]) {
      ++hop;
    }
    return {Conformance::kViolation, hop,
            "path differs from expected route"};
  }
  for (SwitchId w : policy_.required_waypoints) {
    if (std::find(path.begin(), path.end(), w) == path.end()) {
      return {Conformance::kViolation, 0, "required waypoint missing"};
    }
  }
  return {Conformance::kConformant, 0, "conformant"};
}

ConformanceObserver::ConformanceObserver(PathPolicy policy,
                                         std::string path_query)
    : checker_(std::move(policy)), query_(std::move(path_query)) {}

void ConformanceObserver::on_path_decoded(const SinkContext& ctx,
                                          std::string_view query,
                                          const std::vector<SwitchId>& path) {
  if (query != query_) return;
  verdicts_.emplace_back(ctx.flow, checker_.check_full(path));
}

std::size_t ConformanceObserver::violations() const {
  std::size_t n = 0;
  for (const auto& [flow, report] : verdicts_) {
    n += report.verdict == Conformance::kViolation;
  }
  return n;
}

}  // namespace pint
