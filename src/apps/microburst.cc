#include "apps/microburst.h"

#include <stdexcept>
#include <utility>
#include <variant>

namespace pint {

MicroburstDetector::MicroburstDetector(unsigned k, MicroburstConfig config,
                                       std::uint64_t seed)
    : config_(config) {
  if (k == 0) throw std::invalid_argument("k > 0");
  if (config.window % config.window_blocks != 0)
    throw std::invalid_argument("window must divide into blocks");
  baseline_.reserve(k);
  recent_.reserve(k);
  counts_.assign(k, 0);
  for (unsigned i = 0; i < k; ++i) {
    baseline_.emplace_back(128, seed ^ (i * 2 + 1));
    recent_.emplace_back(config.window, config.window_blocks, 64,
                         seed ^ (i * 2 + 2));
  }
}

std::optional<MicroburstEvent> MicroburstDetector::add(
    HopIndex hop, double queue_occupancy) {
  if (hop == 0 || hop > baseline_.size())
    throw std::out_of_range("hop out of range");
  const unsigned idx = hop - 1;
  baseline_[idx].add(queue_occupancy);
  recent_[idx].add(queue_occupancy);
  ++counts_[idx];
  if (counts_[idx] < config_.min_baseline) return std::nullopt;

  const double base = baseline_[idx].quantile(0.5);
  const double rec = recent_[idx].quantile(config_.detection_quantile);
  if (base > 0.0 && rec > config_.burst_factor * base &&
      rec >= config_.min_queue) {
    return MicroburstEvent{hop, rec, base};
  }
  return std::nullopt;
}

double MicroburstDetector::baseline_median(HopIndex hop) const {
  if (hop == 0 || hop > baseline_.size())
    throw std::out_of_range("hop out of range");
  return counts_[hop - 1] > 0 ? baseline_[hop - 1].quantile(0.5) : 0.0;
}

MicroburstObserver::MicroburstObserver(std::string queue_query,
                                       MicroburstConfig config,
                                       std::uint64_t seed,
                                       std::size_t memory_ceiling_bytes,
                                       StorePolicyKind store_policy)
    : query_(std::move(queue_query)), config_(config), seed_(seed),
      detectors_(memory_ceiling_bytes, [](const MicroburstDetector& d) {
        return d.approx_bytes();
      }) {
  detectors_.set_policy(make_store_policy(store_policy, seed ^ 0xB0'0575ULL));
}

void MicroburstObserver::on_observation(const SinkContext& ctx,
                                        std::string_view query,
                                        const Observation& obs) {
  if (query != query_ || ctx.path_length == 0) return;
  const auto* sample = std::get_if<HopSampleObservation>(&obs);
  if (sample == nullptr) return;
  if (sample->hop == 0 || sample->hop > ctx.path_length) return;
  // Admission-aware: a policy that sheds this (non-resident) flow costs no
  // detector; the store counts the rejection.
  MicroburstDetector* detector = detectors_.try_touch(ctx.flow, [&] {
    return MicroburstDetector(ctx.path_length, config_, seed_ ^ ctx.flow);
  });
  if (detector == nullptr) return;
  if (const auto event = detector->add(sample->hop, sample->value)) {
    events_.push_back(FlowBurst{ctx.flow, *event});
  }
}

}  // namespace pint
