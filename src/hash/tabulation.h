// Tabulation hashing (Zobrist / Carter-Wegman style).
//
// Simple tabulation is 3-wise independent and behaves like a fully random
// function for many streaming applications. We provide it as a second,
// structurally different member of the global hash family: tests run PINT's
// algorithms under both mix64-based and tabulation-based hashing to check
// that results do not depend on incidental structure of one family.
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.h"

namespace pint {

class TabulationHash {
 public:
  explicit TabulationHash(std::uint64_t seed) {
    Rng rng(seed ^ 0x7AB17AB17AB17AB1ULL);
    for (auto& table : tables_) {
      for (auto& entry : table) entry = rng.next();
    }
  }

  std::uint64_t operator()(std::uint64_t key) const {
    std::uint64_t h = 0;
    for (unsigned i = 0; i < kChunks; ++i) {
      h ^= tables_[i][(key >> (8 * i)) & 0xFF];
    }
    return h;
  }

  double unit(std::uint64_t key) const {
    return static_cast<double>((*this)(key) >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr unsigned kChunks = 8;  // 8 bytes of key
  std::array<std::array<std::uint64_t, 256>, kChunks> tables_{};
};

}  // namespace pint
