// Global hash functions (paper Section 4.1).
//
// PINT coordinates switches with each other and with the Inference Module
// without exchanging any bits: every probabilistic decision is a
// deterministic function of (packet id, hop number) or (value, packet id)
// under a hash function known network-wide. This file provides those
// families.
//
// Following footnote 5 of the paper, "hashing into [0,1]" is realized by
// hashing into M = 64 bits and comparing against ⌊(2^M - 1) * p⌋, so switch
// and decoder agree bit-exactly on every outcome.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace pint {

// Strong 64-bit mixer (splitmix64 finalizer). Stateless and cheap; the
// avalanche quality is validated in tests/hash_test.cc.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

// Order-dependent combination of two hashed words.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

// A seeded member of the global hash family. All switches and the decoder
// construct it from the same seed (distributed out-of-band by the Query
// Engine), so their outcomes agree without communication.
class GlobalHash {
 public:
  explicit GlobalHash(std::uint64_t seed) : seed_(mix64(seed ^ kDomainTag)) {}

  // --- single-key variants -------------------------------------------------

  // Full 64-bit hash of a packet id (or any 64-bit key).
  std::uint64_t bits(std::uint64_t key) const { return mix64(key ^ seed_); }

  // Hash mapped to the unit interval [0, 1). Only used where a real number
  // is convenient (plots, tests); all protocol decisions use `below()`.
  double unit(std::uint64_t key) const {
    return static_cast<double>(bits(key) >> 11) * 0x1.0p-53;
  }

  // True iff the (discretized) hash falls below probability `p`, i.e. the
  // event of probability p selected by this hash fires for `key`.
  bool below(std::uint64_t key, double p) const {
    return bits(key) <= threshold(p);
  }

  // Uniform value in [0, n).
  std::uint64_t ranged(std::uint64_t key, std::uint64_t n) const {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(bits(key)) * n) >> 64);
  }

  // Low-`b` bit digest, b in [1, 64]. This is the h(value, packet) used to
  // compress values onto small digests (Section 4.2, "hashing").
  std::uint64_t digest(std::uint64_t key, unsigned b) const {
    return bits(key) & low_bits_mask(b);
  }

  // --- two-key variants: g(packet, hop), h(value, packet) ------------------

  std::uint64_t bits2(std::uint64_t k1, std::uint64_t k2) const {
    return mix64(hash_combine(k1 ^ seed_, mix64(k2)));
  }

  double unit2(std::uint64_t k1, std::uint64_t k2) const {
    return static_cast<double>(bits2(k1, k2) >> 11) * 0x1.0p-53;
  }

  bool below2(std::uint64_t k1, std::uint64_t k2, double p) const {
    return bits2(k1, k2) <= threshold(p);
  }

  std::uint64_t digest2(std::uint64_t k1, std::uint64_t k2, unsigned b) const {
    return bits2(k1, k2) & low_bits_mask(b);
  }

  std::uint64_t ranged2(std::uint64_t k1, std::uint64_t k2,
                        std::uint64_t n) const {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(bits2(k1, k2)) * n) >> 64);
  }

  std::uint64_t seed() const { return seed_; }

  // Derive an independent family member (e.g. one per query, per layer, or
  // per instantiation) deterministically from this one.
  GlobalHash derive(std::uint64_t tag) const {
    return GlobalHash(hash_combine(seed_, mix64(tag ^ kDeriveTag)));
  }

 private:
  // ⌊(2^64 - 1) * p⌋ clamped to [0, 2^64-1]; footnote 5 discretization.
  static std::uint64_t threshold(double p) {
    if (p <= 0.0) return 0;  // only key hashing to exactly 0 passes
    if (p >= 1.0) return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(
        p * 18446744073709551615.0);  // (2^64 - 1) as double
  }

  // "PINTHASH"
  static constexpr std::uint64_t kDomainTag = 0x50494E5448415348ULL;
  static constexpr std::uint64_t kDeriveTag = 0xDE121BEDFACADE00ULL;

  std::uint64_t seed_;
};

}  // namespace pint
