// Fast per-packet encoder selection via pseudo-random bit vectors
// (paper Section 4.2, "Reducing the Decoding Complexity").
//
// Instead of evaluating g(packet, i) for every hop i (O(k) per packet), both
// the switches and the decoder derive t = log2(1/p) pseudo-random k-bit
// vectors from the packet id and AND them together. Bit i of the result is
// set with probability 2^-t = p, and the set-bit positions are exactly the
// hops that act on the packet. The decoder recovers all acting hops in
// O(log k + #set bits) word operations.
//
// Requires p to be a (power of two)^-1; the paper notes this gives at worst a
// sqrt(2)-factor approximation of an arbitrary p, which the multi-layer
// analysis absorbs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bitops.h"
#include "hash/global_hash.h"

namespace pint {

// A k-bit vector, k <= 256, stored in four machine words (the paper assumes
// k fits in O(1) words, e.g. k <= 256).
class HopBitVector {
 public:
  static constexpr unsigned kMaxBits = 256;

  HopBitVector() = default;

  bool test(unsigned i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

  void set_all() { words_.fill(~std::uint64_t{0}); }

  void and_with(const std::array<std::uint64_t, 4>& other) {
    for (unsigned w = 0; w < 4; ++w) words_[w] &= other[w];
  }

  // Positions of set bits among the low `k` bits, ascending.
  std::vector<unsigned> set_bits(unsigned k) const {
    std::vector<unsigned> out;
    for (unsigned w = 0; w < 4 && w * 64 < k; ++w) {
      std::uint64_t word = words_[w];
      if (k - w * 64 < 64) word &= low_bits_mask(k - w * 64);
      while (word != 0) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(word));
        out.push_back(w * 64 + bit);
        word &= word - 1;
      }
    }
    return out;
  }

  unsigned count(unsigned k) const {
    unsigned total = 0;
    for (unsigned w = 0; w < 4 && w * 64 < k; ++w) {
      std::uint64_t word = words_[w];
      if (k - w * 64 < 64) word &= low_bits_mask(k - w * 64);
      total += popcount(word);
    }
    return total;
  }

 private:
  std::array<std::uint64_t, 4> words_{};
};

// Derives, for a packet, the k-bit selection vector in which each bit is set
// independently with probability 2^-log2_inv_p.
class BitVectorSelector {
 public:
  BitVectorSelector(const GlobalHash& hash, unsigned log2_inv_p)
      : hash_(hash), rounds_(log2_inv_p) {}

  // Probability that any given bit is set: 2^-rounds.
  double probability() const {
    return 1.0 / static_cast<double>(std::uint64_t{1} << rounds_);
  }

  HopBitVector select(PacketId packet) const {
    HopBitVector v;
    v.set_all();
    for (unsigned r = 0; r < rounds_; ++r) {
      std::array<std::uint64_t, 4> words;
      for (unsigned w = 0; w < 4; ++w) {
        words[w] = hash_.bits2(packet, (std::uint64_t{r} << 32) | w);
      }
      v.and_with(words);
    }
    return v;
  }

  // Switch-side check: does hop `i` (0-based) act on this packet? A switch
  // only needs its own bit, computable in O(rounds) operations.
  bool acts(PacketId packet, unsigned i) const {
    const unsigned w = i >> 6, b = i & 63;
    for (unsigned r = 0; r < rounds_; ++r) {
      const std::uint64_t word =
          hash_.bits2(packet, (std::uint64_t{r} << 32) | w);
      if (((word >> b) & 1) == 0) return false;
    }
    return true;
  }

 private:
  GlobalHash hash_;
  unsigned rounds_;
};

}  // namespace pint
