// Bounded multi-producer/multi-consumer queue (Dmitry Vyukov's sequence-
// numbered ring). Each cell carries an atomic sequence that tells both
// sides whether the cell is ready for them; producers and consumers claim
// cells with one CAS on their own cursor and never touch the other side's,
// so enqueue/dequeue are wait-free against each other and lock-free among
// themselves. No mutexes on the data path — this is the front-end that
// lets several NIC-queue threads feed one ShardedSink shard concurrently.
//
// try_push/try_pop are non-blocking: a full queue refuses the push (the
// caller decides whether to spin, sleep, or drop — an explicit
// backpressure decision), an empty queue refuses the pop. Capacity is
// rounded up to a power of two.
//
// Memory-ordering invariant (the exact acquire/release pairing): each
// cell's `seq` is a state word that hands the cell back and forth.
//
//  * A producer claims cell `pos` when seq == pos (CAS on head_, relaxed:
//    the CAS only arbitrates ownership; all data ordering rides on seq),
//    writes the value, then seq.store(pos + 1, release) — publication.
//  * A consumer waits for seq == pos + 1; its seq.load(acquire) pairs
//    with that release store, so the value read happens-after the
//    producer's write. It moves the value out, then
//    seq.store(pos + capacity, release) — recycling the cell for the
//    producer one lap ahead, whose seq.load(acquire) pairs with it so the
//    overwrite happens-after the consumer's read.
//  * seq values only ever advance (pos -> pos+1 -> pos+capacity -> ...),
//    so a stale load conservatively reads "not ready for me" — the
//    `diff < 0` full/empty exits — and never grants ownership early.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/cacheline.h"

namespace pint {

/// One CPU "relax" hint: tells the core we are in a spin-wait so it can
/// yield pipeline resources to the sibling hyperthread without an OS call.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Bounded exponential backoff for full/empty-queue waits: spin with
/// `cpu_relax` first (doubling each round — cheap, keeps the waiter on-core
/// for the common microsecond-scale stall), then fall back to
/// `std::this_thread::yield()` once the spin budget is exhausted (the
/// consumer is descheduled; burning cycles would only keep it off the
/// core — the 1-core CI box makes pure spinning pathological). Replaces
/// the raw yield() loop ShardedSink::submit used to run.
class Backoff {
 public:
  void wait() {
    if (round_ < kSpinRounds) {
      const unsigned spins = 1u << round_;
      for (unsigned i = 0; i < spins; ++i) cpu_relax();
      ++round_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() { round_ = 0; }

 private:
  // 2^0 + ... + 2^9 ≈ 1k relax hints (~microseconds) before yielding.
  static constexpr unsigned kSpinRounds = 10;
  unsigned round_ = 0;
};

template <typename T>
class MpmcQueue {
 public:
  // The cell protocol bakes in assumptions about T:
  //  * every cell carries a default-constructed T until a producer claims
  //    it (and again after its value is moved out), so T must be
  //    (nothrow-)default-constructible;
  //  * the value transfer happens *between* the ownership CAS and the seq
  //    release-store; a throwing move-assignment there would leave a
  //    claimed cell whose seq never advances, wedging the ring for every
  //    thread — so the move must be noexcept.
  explicit MpmcQueue(std::size_t capacity)
      : cells_(std::bit_ceil(std::max<std::size_t>(capacity, 2))),
        mask_(cells_.size() - 1) {
    // Asserted here rather than at class scope so nested payload types
    // (whose default member initializers are only visible once the
    // enclosing class is complete) are fully formed when checked.
    static_assert(std::is_nothrow_default_constructible_v<T>,
                  "MpmcQueue<T> default-constructs every cell payload; T "
                  "must be nothrow default-constructible");
    static_assert(std::is_nothrow_move_assignable_v<T>,
                  "MpmcQueue<T> transfers payloads by move-assignment "
                  "between claiming a cell and publishing its seq; a "
                  "throwing move would wedge the ring");
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return cells_.size(); }

  /// False when the queue is full (value untouched).
  [[nodiscard]] bool try_push(T&& value) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // the cell is still owned by a lagging consumer: full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when the queue is empty.
  [[nodiscard]] bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // no producer has published this cell yet: empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  /// Racy size hint (monitoring only).
  std::size_t approx_size() const {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T value;
  };

  std::vector<Cell> cells_;
  std::size_t mask_;
  // Both cursors are multi-writer by design (CAS arbitration) — padding
  // cannot remove that contention, but private lines keep producer CAS
  // traffic off the consumers' cursor and both off cells_/mask_.
  alignas(kCacheLineBytes) std::atomic<std::size_t> head_{0};  // producers
  alignas(kCacheLineBytes) std::atomic<std::size_t> tail_{0};  // consumers
};

// See common/cacheline.h: a decayed alignas here would silently put both
// cursors on one line — the textbook MPMC false-sharing bug.
PINT_ASSERT_CACHELINE_ALIGNED(MpmcQueue<int>);

}  // namespace pint
