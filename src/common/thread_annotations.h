/// \file
/// Clang thread-safety-analysis attribute macros.
///
/// Wraps the Clang `-Wthread-safety` attributes (the compile-time race
/// detector: every lock-protected member declares its lock, and a missed
/// acquisition is a build error, not a TSAN flake) behind `PINT_*` macros
/// that expand to nothing on compilers without the attributes (GCC), so
/// annotated code builds everywhere and is *checked* wherever Clang builds
/// it — CI runs a blocking `-Wthread-safety -Werror` job.
///
/// The attributes only work on annotated capability types; std::mutex in
/// libstdc++ carries none, so lock-protected code uses the annotated
/// wrappers in common/mutex.h (`pint::Mutex`, `pint::MutexLock`,
/// `pint::CondVar`) instead of the raw std types.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define PINT_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PINT_THREAD_ANNOTATION__(x)  // not Clang: annotations compile away
#endif

/// Declares a type to be a capability (lockable). Example:
///   class PINT_CAPABILITY("mutex") Mutex { ... };
#define PINT_CAPABILITY(x) PINT_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define PINT_SCOPED_CAPABILITY PINT_THREAD_ANNOTATION__(scoped_lockable)

/// Member is only read/written with `x` held.
#define PINT_GUARDED_BY(x) PINT_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is only accessed with `x` held.
#define PINT_PT_GUARDED_BY(x) PINT_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function acquires the capability (exclusively) and does not release it.
#define PINT_ACQUIRE(...) \
  PINT_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define PINT_RELEASE(...) \
  PINT_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function may acquire the capability; the boolean first argument is the
/// return value that means "acquired".
#define PINT_TRY_ACQUIRE(...) \
  PINT_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability (exclusively) across the call.
#define PINT_REQUIRES(...) \
  PINT_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself —
/// catches self-deadlock at compile time).
#define PINT_EXCLUDES(...) PINT_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define PINT_RETURN_CAPABILITY(x) PINT_THREAD_ANNOTATION__(lock_returned(x))

/// Lock-ordering declaration: this capability must be acquired before `...`.
#define PINT_ACQUIRED_BEFORE(...) \
  PINT_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/// Lock-ordering declaration: this capability must be acquired after `...`.
#define PINT_ACQUIRED_AFTER(...) \
  PINT_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Escape hatch: the function's locking cannot be expressed to the
/// analysis (use sparingly, and say why at the use site).
#define PINT_NO_THREAD_SAFETY_ANALYSIS \
  PINT_THREAD_ANNOTATION__(no_thread_safety_analysis)

/// Runtime assertion that the calling thread holds the capability; tells
/// the analysis to assume it from here on.
#define PINT_ASSERT_CAPABILITY(x) \
  PINT_THREAD_ANNOTATION__(assert_capability(x))
