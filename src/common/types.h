// Basic identifier and unit types shared by every PINT module.
//
// We keep these as plain aliases (rather than wrapper classes) because they
// cross module boundaries constantly and are hashed/serialized in hot paths;
// the names document intent at interfaces.
#pragma once

#include <cstdint>

namespace pint {

// Unique per-packet identifier. The paper (Section 4.1) assumes packets carry
// enough entropy (IPID, TCP seq, ...) to derive a unique id; in this
// reproduction every simulated packet is assigned a distinct 64-bit id.
using PacketId = std::uint64_t;

// Switch identifier. The paper uses 32-bit switch IDs (Section 4.2).
using SwitchId = std::uint32_t;

// 1-based position of a switch on a flow's path ("hop number"), derivable
// from the TTL in a real deployment (Section 4.1, footnote 6).
using HopIndex = std::uint32_t;

// A digest is the per-packet telemetry bitstring PINT appends. Its width is
// the query bit budget (1..64 bits here); we store it right-aligned.
using Digest = std::uint64_t;

// Simulated time in nanoseconds.
using TimeNs = std::int64_t;

// Bits/second, bytes.
using Bandwidth = std::int64_t;
using Bytes = std::int64_t;

constexpr TimeNs kMicro = 1'000;
constexpr TimeNs kMilli = 1'000'000;
constexpr TimeNs kSecond = 1'000'000'000;

// Approximate per-entry bookkeeping charged for node-based map storage
// (hash/tree node plus bucket pointer). Shared by every approximate size
// function (RecordingStore size callbacks, decoder/sketch footprints) so
// the Recording Module's memory accounting treats map-resident state
// consistently across modules.
inline constexpr std::size_t kMapNodeOverheadBytes = 48;

// Returns a bitmask with the low `bits` bits set. `bits` must be in [0, 64].
constexpr std::uint64_t low_bits_mask(unsigned bits) {
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

}  // namespace pint
