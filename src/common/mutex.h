/// \file
/// Annotated mutex / scoped-lock / condition-variable wrappers.
///
/// Clang's `-Wthread-safety` analysis (common/thread_annotations.h) only
/// tracks capability types that carry the attributes. libstdc++'s
/// `std::mutex` and `std::lock_guard` carry none, so code that wants the
/// compile-time race check uses these thin wrappers instead: identical
/// runtime behavior (they *are* std::mutex / std::condition_variable
/// underneath, futex fast path included), plus the annotations that let
/// the analysis prove every `PINT_GUARDED_BY` member is only touched under
/// its lock.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/thread_annotations.h"

namespace pint {

/// `std::mutex` with capability annotations. Satisfies *BasicLockable*
/// (lock/unlock) so generic code still works; prefer `MutexLock` over
/// calling lock()/unlock() directly.
class PINT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PINT_ACQUIRE() { mu_.lock(); }
  void unlock() PINT_RELEASE() { mu_.unlock(); }
  bool try_lock() PINT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock with mid-scope unlock/relock (the shape `std::unique_lock`
/// provides, minus the empty/deferred states the analysis cannot track).
/// The scoped-capability annotation makes the analysis treat construction
/// as acquisition and destruction as release, and track the explicit
/// unlock()/lock() calls in between.
class PINT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PINT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PINT_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. before slow work the lock must not cover).
  void unlock() PINT_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  /// Reacquires after an early unlock().
  void lock() PINT_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable whose waits take the annotated `Mutex` directly, so
/// the analysis sees that the caller must hold the lock across the wait
/// (`std::condition_variable` requires a `std::unique_lock`, which the
/// analysis cannot see through). The mutex is released while sleeping and
/// reacquired before returning — standard CV semantics.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// One sleep/wake cycle; like all CV waits, may wake spuriously.
  void wait(Mutex& mu) PINT_REQUIRES(mu) {
    // Adopt the already-held mutex for the duration of the wait; release()
    // hands ownership back so the MutexLock (or caller) stays the one true
    // unlocker. The analysis sees a REQUIRES function: held in, held out.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Waits until `pred()` holds; the predicate runs with `mu` held.
  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) PINT_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native, std::move(pred));
    native.release();
  }

 private:
  std::condition_variable cv_;
};

}  // namespace pint
