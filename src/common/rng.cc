#include "common/rng.h"

#include <cmath>

namespace pint {

double Rng::exponential(double lambda) {
  // Inverse-CDF; uniform() returns [0,1) so 1-u is in (0,1].
  return -std::log(1.0 - uniform()) / lambda;
}

std::uint64_t Rng::geometric(double p) {
  if (p >= 1.0) return 0;
  return static_cast<std::uint64_t>(
      std::floor(std::log(1.0 - uniform()) / std::log(1.0 - p)));
}

}  // namespace pint
