/// \file
/// Slab arena + STL allocator adapter for the Recording Module's per-flow
/// node storage.
///
/// A RecordingStore's hot path churns small, similarly-sized nodes: hash-map
/// entries and LRU list links, created on first touch and destroyed on
/// eviction. Backing them with the global heap costs a malloc/free round
/// trip per node and scatters flow state across the address space; a slab
/// arena instead carves nodes out of large contiguous slabs and recycles
/// freed nodes through per-size free lists, so steady-state churn (create /
/// evict at a full ceiling) touches no allocator locks and reuses warm
/// memory.
///
/// Contract:
///  * `SlabArena` is NOT thread-safe — each consumer (one RecordingStore,
///    which lives inside one framework replica driven by one shard worker)
///    owns its own arena.
///  * Memory freed into the arena is recycled but only returned to the OS
///    when the arena is destroyed — the right trade for stores whose
///    resident size is bounded by an operator ceiling.
///  * Allocations larger than `max_pooled_bytes()` (hash-table bucket
///    arrays after growth, for instance) fall through to `operator new`;
///    the arena still routes their frees correctly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace pint {

class SlabArena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 1 << 16;

  explicit SlabArena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes < kGranularity ? kGranularity : slab_bytes) {}

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    if (!pooled(bytes, align)) {
      ++oversize_allocs_;
      return ::operator new(bytes, std::align_val_t(align));
    }
    const std::size_t size = round_up(bytes);
    const std::size_t cls = size / kGranularity;
    if (cls < free_lists_.size() && free_lists_[cls] != nullptr) {
      FreeNode* node = free_lists_[cls];
      free_lists_[cls] = node->next;
      ++reused_;
      return node;
    }
    if (remaining_ < size) new_slab(size);
    void* p = cursor_;
    cursor_ += size;
    remaining_ -= size;
    ++fresh_;
    return p;
  }

  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
    if (p == nullptr) return;
    if (!pooled(bytes, align)) {
      ::operator delete(p, std::align_val_t(align));
      return;
    }
    const std::size_t cls = round_up(bytes) / kGranularity;
    if (free_lists_.size() <= cls) free_lists_.resize(cls + 1, nullptr);
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_lists_[cls];
    free_lists_[cls] = node;
  }

  /// Largest request served from slabs; bigger ones go to the heap.
  std::size_t max_pooled_bytes() const { return slab_bytes_ / 4; }

  std::size_t slabs() const { return slabs_.size(); }
  std::size_t slab_bytes_total() const { return slabs_.size() * slab_bytes_; }
  /// Pooled allocations served by recycling a freed node.
  std::uint64_t freelist_reuses() const { return reused_; }
  /// Pooled allocations served by fresh slab space.
  std::uint64_t fresh_allocs() const { return fresh_; }
  /// Requests too large (or over-aligned) for the slabs.
  std::uint64_t oversize_allocs() const { return oversize_allocs_; }

 private:
  // One free node must fit in the smallest class, and classes are multiples
  // of the granularity, which also serves as the supported alignment bound.
  struct FreeNode {
    FreeNode* next;
  };
  static constexpr std::size_t kGranularity = 16;
  static_assert(sizeof(FreeNode) <= kGranularity);

  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kGranularity - 1) & ~(kGranularity - 1);
  }

  bool pooled(std::size_t bytes, std::size_t align) const {
    return align <= kGranularity && bytes <= max_pooled_bytes();
  }

  void new_slab(std::size_t need) {
    slabs_.push_back(std::make_unique<std::byte[]>(slab_bytes_));
    cursor_ = slabs_.back().get();
    remaining_ = slab_bytes_;
    (void)need;  // need <= max_pooled_bytes() <= slab_bytes_ by construction
  }

  std::size_t slab_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::byte* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  std::vector<FreeNode*> free_lists_;  // index = size / kGranularity
  std::uint64_t reused_ = 0;
  std::uint64_t fresh_ = 0;
  std::uint64_t oversize_allocs_ = 0;
};

/// Minimal STL allocator over a SlabArena. A null arena degrades to plain
/// `operator new` / `operator delete`, so one container type serves both the
/// arena-backed and the heap-backed configuration (the bench's arena on/off
/// comparison flips only this pointer).
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(SlabArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ != nullptr) {
      arena_->deallocate(p, n * sizeof(T), alignof(T));
    } else {
      ::operator delete(p);
    }
  }

  SlabArena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  SlabArena* arena_ = nullptr;
};

}  // namespace pint
