/// \file
/// Cache-line layout constants and audit helpers for the concurrent hot
/// path.
///
/// The sink pipeline's shared state falls into three classes, and the
/// difference between them is the whole many-core story:
///
///  * **Single-writer counters** (a shard worker's published/dropped
///    totals, a relay thread's consumed total): one thread writes, others
///    read rarely. Cheap — *unless* two different writers' counters share
///    a cache line, in which case every increment invalidates the other
///    writer's line (false sharing) and both cores stall on coherence
///    traffic that no algorithmic profile will ever show.
///  * **Handshake flags** (queue head/tail indices, the relay
///    sleep/notify state): written by one side, spun on by the other.
///    These must own their line outright, or the spinning side's reads
///    keep stealing the line from the writer.
///  * **Genuinely contended words** (MPMC cursors, pending-batch counts):
///    several writers by design. Padding cannot remove that contention,
///    but it keeps the contention from bleeding into neighbors.
///
/// This header gives the layout rules one spelling so the audit is
/// greppable: align every class boundary with `alignas(kCacheLineBytes)`
/// and assert the intent with `PINT_ASSERT_CACHELINE_ALIGNED` — a type
/// whose alignment silently decays (a refactor drops the alignas, a
/// wrapper repacks the struct) becomes a compile error, not a perf
/// mystery on a 64-core host.
#pragma once

#include <cstddef>
#include <new>

namespace pint {

/// The coherence granule the layout audit pads to. 64 bytes covers every
/// mainstream x86-64 and AArch64 part; `std::hardware_destructive_
/// interference_size` is deliberately not used — it is a compile-time
/// constant too (so no more correct on the deployment machine than 64)
/// and GCC warns that its value makes padding ABI-fragile across TUs.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Asserts a type claims at least a full cache line of alignment — the
/// compile-time witness that an `alignas(kCacheLineBytes)` on the type
/// (or its first member) survived refactoring. sizeof is then a multiple
/// of the line by the language rules, so arrays of the type never pack
/// two instances into one line.
#define PINT_ASSERT_CACHELINE_ALIGNED(...)                                   \
  static_assert(alignof(__VA_ARGS__) >= ::pint::kCacheLineBytes,             \
                #__VA_ARGS__                                                 \
                " must start on its own cache line (alignas("               \
                "kCacheLineBytes) missing or dropped)")

/// One value padded to a private cache line. For members that need a line
/// of their own inside an otherwise tightly-packed struct — typically a
/// handshake flag another thread spins on, or a single-writer counter
/// whose neighbor has a different writer.
template <typename T>
struct alignas(kCacheLineBytes) CacheAligned {
  T value{};
};

}  // namespace pint
