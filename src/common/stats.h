// Small statistics helpers used by the benchmark harnesses and tests:
// exact percentiles over samples, running mean/variance, and relative error.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace pint {

// Exact q-quantile (q in [0,1]) of a sample by sorting a copy.
// Uses the nearest-rank definition; q=0.5 is the median.
template <typename T>
T percentile(std::vector<T> values, double q) {
  if (values.empty()) throw std::invalid_argument("percentile of empty set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("q out of [0,1]");
  std::sort(values.begin(), values.end());
  const double raw = std::ceil(q * static_cast<double>(values.size())) - 1.0;
  const double clamped =
      std::clamp(raw, 0.0, static_cast<double>(values.size()) - 1.0);
  return values[static_cast<std::size_t>(clamped)];
}

template <typename T>
double mean(const std::vector<T>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const T& v : values) sum += static_cast<double>(v);
  return sum / static_cast<double>(values.size());
}

// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

inline double relative_error(double estimate, double truth) {
  if (truth == 0.0) return estimate == 0.0 ? 0.0 : 1.0;
  return std::abs(estimate - truth) / std::abs(truth);
}

}  // namespace pint
