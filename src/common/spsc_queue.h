// Bounded single-producer/single-consumer queue of typed items: the
// per-shard observer-relay ring behind ShardedSink's async observer mode.
// One cache-line-separated index per side, acquire/release publication —
// the classic SPSC contract (the byte-level sibling is
// transport/stream.h's SpscRingStream). try_push/try_pop are non-blocking;
// a full queue refuses the push so the caller can apply an explicit
// OverflowPolicy (block with backoff, or drop and count).
//
// Memory-ordering invariant (the exact acquire/release pairing):
//
//  * Publication: the producer writes cells_[head & mask_] *before*
//    head_.store(head + 1, release). The consumer's
//    head_.load(acquire) in try_pop pairs with that store, so observing
//    the new head happens-after the element write — the consumer never
//    reads a half-constructed payload.
//  * Reclamation: the consumer moves the element out and resets the cell
//    *before* tail_.store(tail + 1, release). The producer's
//    tail_.load(acquire) in try_push pairs with it, so a producer that
//    sees the freed slot happens-after the consumer finished with it —
//    the producer never overwrites a payload still being read.
//  * head_/tail_ are monotonically increasing totals (never wrapped);
//    occupancy is head - tail, and each index has exactly one writer, so
//    relaxed self-reads (head_ by the producer, tail_ by the consumer)
//    are exact. tail_cache_/head_cache_ are stale-tolerant snapshots of
//    the *other* side: staleness can only under-report free slots /
//    available items (a spurious "full"/"empty"), never fabricate them.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/cacheline.h"

namespace pint {

template <typename T>
class SpscQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity)
      : cells_(std::bit_ceil(std::max<std::size_t>(capacity, 2))),
        mask_(cells_.size() - 1) {
    // The ring's cell protocol bakes in assumptions about T (asserted
    // here, not at class scope, so nested payload types — whose default
    // member initializers are only visible once the enclosing class is
    // complete — are fully formed when checked):
    //  * cells are default-constructed up front and re-assigned to T{} on
    //    pop (dropping heap a moved-from payload may still pin), so T
    //    must be nothrow-default-constructible;
    //  * a push/pop transfers by move-assignment after the slot is
    //    claimed; if that move could throw, the ring would publish or
    //    recycle a cell whose payload transfer never happened.
    static_assert(std::is_nothrow_default_constructible_v<T>,
                  "SpscQueue<T> default-constructs cells and resets them "
                  "on pop; T must be nothrow default-constructible");
    static_assert(std::is_nothrow_move_assignable_v<T>,
                  "SpscQueue<T> transfers payloads by move-assignment "
                  "after claiming a slot; a throwing move would corrupt "
                  "the ring");
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return cells_.size(); }

  /// False when the queue is full (value untouched). Producer thread only.
  [[nodiscard]] bool try_push(T&& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_cache_ == cells_.size()) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ == cells_.size()) return false;
    }
    cells_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// False when the queue is empty. Consumer thread only.
  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    out = std::move(cells_[tail & mask_]);
    // Release the cell: drop payloads the moved-from state may still pin
    // (vectors keep their capacity after a move) so a drained ring holds
    // no stale heap.
    cells_[tail & mask_] = T{};
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Racy size hint (monitoring only); exact from the producer thread.
  std::size_t approx_size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? head - tail : 0;
  }

 private:
  std::vector<T> cells_;
  std::size_t mask_;
  // Four private cache lines (common/cacheline.h): each index has one
  // writer and one reader, and each side's stale-tolerant cache of the
  // other index is written only by its owner — separating all four keeps
  // a push from invalidating the popper's lines and vice versa.
  alignas(kCacheLineBytes) std::atomic<std::size_t> head_{0};  // producer
  alignas(kCacheLineBytes) std::atomic<std::size_t> tail_{0};  // consumer
  alignas(kCacheLineBytes) std::size_t tail_cache_ = 0;  // producer's view
  alignas(kCacheLineBytes) std::size_t head_cache_ = 0;  // consumer's view
};

// The index/cache lines above are the queue's whole point; if the alignas
// decays the ring still works, just slower on every core count — make it
// a compile error instead.
PINT_ASSERT_CACHELINE_ALIGNED(SpscQueue<int>);

}  // namespace pint
