// Deterministic pseudo-random number generation for simulations.
//
// All experiment randomness flows through Rng so that runs are reproducible
// from a single seed. The generator is xoshiro256** seeded via splitmix64,
// which is fast, high quality, and has no global state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace pint {

// splitmix64 step; also used standalone to derive independent seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDDEADBEEF1234ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  bool bernoulli(double p) { return uniform() < p; }

  // Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda);

  // Geometric: number of failures before first success, success prob p.
  std::uint64_t geometric(double p);

  // Fork an independent generator (for parallel experiment arms).
  Rng fork() { return Rng(next() ^ 0xA5A5A5A55A5A5A5AULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pint
