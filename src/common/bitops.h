// Bit-manipulation helpers used by the hashing, coding, and data-plane
// emulation modules.
#pragma once

#include <bit>
#include <cstdint>

namespace pint {

// Index (0-based, from LSB) of the most significant set bit.
// Mirrors the TCAM longest-prefix trick switches use to locate the leading
// one (Appendix C). x must be nonzero.
constexpr unsigned msb_index(std::uint64_t x) {
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

constexpr unsigned popcount(std::uint64_t x) {
  return static_cast<unsigned>(std::popcount(x));
}

constexpr bool is_power_of_two(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

// Smallest power of two >= x (x <= 2^63).
constexpr std::uint64_t next_power_of_two(std::uint64_t x) {
  return x <= 1 ? 1 : std::uint64_t{1} << (64 - std::countl_zero(x - 1));
}

// Number of bits needed to represent x (0 -> 0 bits).
constexpr unsigned bit_width(std::uint64_t x) {
  return static_cast<unsigned>(std::bit_width(x));
}

// Extract the `width`-bit field of `x` starting at bit `pos` (LSB = 0).
constexpr std::uint64_t extract_bits(std::uint64_t x, unsigned pos,
                                     unsigned width) {
  return (x >> pos) & ((width >= 64) ? ~std::uint64_t{0}
                                     : ((std::uint64_t{1} << width) - 1));
}

}  // namespace pint
