// Synthetic ISP topologies calibrated to Topology Zoo (paper Section 6.3).
//
// The paper evaluates path tracing on Kentucky Datalink (753 switches,
// diameter 59) and US Carrier (157 switches, diameter 36) from Topology Zoo.
// The GML files are not redistributable here, so we generate synthetic
// graphs with the same published node count and diameter: a backbone path
// realizes the diameter exactly, and the remaining nodes attach as random
// branches (ISP topologies from the Zoo are tree-like with long chains,
// which is why their diameters are so large). Path-tracing cost in Fig. 10
// depends only on the hop count of the traced path, which we sweep exactly
// as the paper does, so this substitution preserves the measured behaviour.
#pragma once

#include <cstdint>
#include <string>

#include "topology/graph.h"

namespace pint {

struct IspTopology {
  std::string name;
  Graph graph;
  std::vector<NodeId> backbone;  // path of `diameter`+1 nodes
  unsigned diameter = 0;
};

IspTopology make_isp_topology(const std::string& name, unsigned num_switches,
                              unsigned diameter, std::uint64_t seed);

// The two Topology-Zoo stand-ins used by Fig. 10.
IspTopology make_kentucky_datalink(std::uint64_t seed = 1);  // 753, D=59
IspTopology make_us_carrier(std::uint64_t seed = 2);         // 157, D=36

// A path of the requested hop count (`hops` switches, i.e. hops-1 edges)
// embedded in the topology, starting from the backbone head. Used to sweep
// Fig. 10's x-axis.
std::vector<NodeId> backbone_prefix(const IspTopology& isp, unsigned hops);

}  // namespace pint
