// Undirected network graph with BFS shortest paths and ECMP path selection.
//
// Used by the path-tracing experiments (Fig. 10): the decoder needs paths of
// every length up to the topology diameter, and the routing layer must be
// deterministic per flow (ECMP hashes the flow key to break ties) so a flow
// follows a single path, matching the paper's assumption in Section 3.2.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "hash/global_hash.h"

namespace pint {

using NodeId = std::uint32_t;

class Graph {
 public:
  explicit Graph(std::size_t num_nodes) : adj_(num_nodes) {}

  void add_edge(NodeId a, NodeId b);
  bool has_edge(NodeId a, NodeId b) const;

  std::size_t num_nodes() const { return adj_.size(); }
  std::size_t num_edges() const { return num_edges_; }
  const std::vector<NodeId>& neighbors(NodeId n) const { return adj_[n]; }

  // BFS distances from src to every node (unreachable = -1).
  std::vector<int> distances_from(NodeId src) const;

  // One shortest path src -> dst, ECMP ties broken by hashing
  // (flow_key, node) so each flow deterministically takes a single path.
  // Returns the node sequence including both endpoints, or nullopt if
  // disconnected.
  std::optional<std::vector<NodeId>> ecmp_path(NodeId src, NodeId dst,
                                               std::uint64_t flow_key,
                                               const GlobalHash& hash) const;

  // Largest shortest-path distance over sampled sources (exact if
  // sample_sources >= num_nodes).
  unsigned diameter(std::size_t sample_sources = SIZE_MAX) const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t num_edges_ = 0;
};

}  // namespace pint
