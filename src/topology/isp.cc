#include "topology/isp.h"

#include <stdexcept>

#include "common/rng.h"

namespace pint {

IspTopology make_isp_topology(const std::string& name, unsigned num_switches,
                              unsigned diameter, std::uint64_t seed) {
  if (num_switches < diameter + 1)
    throw std::invalid_argument("need at least diameter+1 switches");
  IspTopology isp{name, Graph(num_switches), {}, diameter};
  // Backbone chain realizes the diameter.
  for (NodeId n = 0; n <= diameter; ++n) {
    isp.backbone.push_back(n);
    if (n > 0) isp.graph.add_edge(n - 1, n);
  }
  // Remaining switches attach as branches; to preserve the diameter we only
  // attach to backbone positions away from the ends (a branch of depth 1 off
  // position p creates paths of length min(p, D-p)+1 which stays <= D when
  // 1 <= p <= D-1).
  Rng rng(seed ^ 0x15B15B15B15B15BULL);
  for (NodeId n = diameter + 1; n < num_switches; ++n) {
    const NodeId anchor =
        1 + static_cast<NodeId>(rng.uniform_int(diameter - 1));
    isp.graph.add_edge(n, anchor);
  }
  return isp;
}

IspTopology make_kentucky_datalink(std::uint64_t seed) {
  return make_isp_topology("KentuckyDatalink", 753, 59, seed);
}

IspTopology make_us_carrier(std::uint64_t seed) {
  return make_isp_topology("USCarrier", 157, 36, seed);
}

std::vector<NodeId> backbone_prefix(const IspTopology& isp, unsigned hops) {
  if (hops == 0 || hops > isp.backbone.size())
    throw std::invalid_argument("hops out of range");
  return {isp.backbone.begin(), isp.backbone.begin() + hops};
}

}  // namespace pint
