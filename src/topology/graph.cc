#include "topology/graph.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace pint {

void Graph::add_edge(NodeId a, NodeId b) {
  if (a >= adj_.size() || b >= adj_.size())
    throw std::out_of_range("node id out of range");
  if (a == b) throw std::invalid_argument("self loop");
  if (has_edge(a, b)) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  ++num_edges_;
}

bool Graph::has_edge(NodeId a, NodeId b) const {
  const auto& n = adj_[a];
  return std::find(n.begin(), n.end(), b) != n.end();
}

std::vector<int> Graph::distances_from(NodeId src) const {
  std::vector<int> dist(adj_.size(), -1);
  std::queue<NodeId> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : adj_[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

std::optional<std::vector<NodeId>> Graph::ecmp_path(
    NodeId src, NodeId dst, std::uint64_t flow_key,
    const GlobalHash& hash) const {
  const std::vector<int> dist_to_dst = distances_from(dst);
  if (dist_to_dst[src] < 0) return std::nullopt;
  std::vector<NodeId> path{src};
  NodeId cur = src;
  while (cur != dst) {
    // Candidate next hops: neighbors strictly closer to dst.
    NodeId best = cur;
    std::uint64_t best_rank = 0;
    bool found = false;
    for (NodeId v : adj_[cur]) {
      if (dist_to_dst[v] != dist_to_dst[cur] - 1) continue;
      const std::uint64_t rank = hash.bits2(flow_key, v);
      if (!found || rank > best_rank) {
        best = v;
        best_rank = rank;
        found = true;
      }
    }
    if (!found) return std::nullopt;  // cannot happen on a valid BFS field
    cur = best;
    path.push_back(cur);
  }
  return path;
}

unsigned Graph::diameter(std::size_t sample_sources) const {
  unsigned best = 0;
  const std::size_t n = adj_.size();
  const std::size_t step =
      sample_sources >= n ? 1 : std::max<std::size_t>(1, n / sample_sources);
  for (std::size_t s = 0; s < n; s += step) {
    for (int d : distances_from(static_cast<NodeId>(s))) {
      if (d > 0) best = std::max(best, static_cast<unsigned>(d));
    }
  }
  return best;
}

}  // namespace pint
