// FatTree topologies (paper Sections 6.1 and 6.3).
//
// Two variants:
//  * canonical K-ary fat-tree (K pods; (K/2)^2 cores; K/2 agg + K/2 edge per
//    pod; K/2 hosts per edge switch) — the K=8 tree of Fig. 10c/f, switch
//    diameter 5 (hops counted over switches, ToR..core..ToR);
//  * the HPCC evaluation tree (Section 6.1): 16 core, 20 agg, 20 ToR,
//    320 servers, 16 per rack.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.h"

namespace pint {

struct FatTreeNodes {
  std::vector<NodeId> cores;
  std::vector<NodeId> aggs;
  std::vector<NodeId> edges;  // ToRs
  std::vector<NodeId> hosts;
};

struct FatTree {
  Graph graph;
  FatTreeNodes nodes;

  // Host's rack (ToR index) for locality-aware traffic generation.
  std::vector<std::uint32_t> host_rack;
};

// Canonical K-ary fat-tree; K must be even.
FatTree make_fat_tree(unsigned k_ary, bool with_hosts = true);

// Parameterized fat-tree for scenario specs. Departs from the canonical
// tree on two knobs:
//  * `pods` — build only this many pods (default 0 = all K). Fewer pods
//    shrink the tree without changing per-pod wiring, so path shapes
//    (host-edge-agg-core-agg-edge-host) are preserved.
//  * `oversubscription` — host-side fan-out multiplier at the edge tier:
//    each edge switch serves (K/2) * oversubscription hosts (default 1 =
//    rearrangeably non-blocking). 2 means a 2:1 oversubscribed edge, the
//    common datacenter shape where the access tier can offer twice the
//    uplink capacity.
struct FatTreeOptions {
  unsigned k = 4;
  unsigned pods = 0;              // 0 = k pods (canonical)
  unsigned oversubscription = 1;  // hosts per edge = (k/2) * this
  bool with_hosts = true;
};
FatTree make_fat_tree(const FatTreeOptions& options);

// Two-tier leaf-spine (Clos) fabric: every leaf connects to every spine,
// `hosts_per_leaf` hosts per leaf. Switch paths are host-leaf-spine-leaf-
// host (3 switch hops) — the small-diameter counterpart to the fat-tree.
FatTree make_leaf_spine(unsigned leaves, unsigned spines,
                        unsigned hosts_per_leaf);

// The HPCC evaluation topology of Section 6.1 (scaled by `scale` in (0,1]
// for faster simulation: scale=0.5 halves every tier, min 1 per tier).
FatTree make_hpcc_fat_tree(double scale = 1.0);

}  // namespace pint
