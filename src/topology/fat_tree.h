// FatTree topologies (paper Sections 6.1 and 6.3).
//
// Two variants:
//  * canonical K-ary fat-tree (K pods; (K/2)^2 cores; K/2 agg + K/2 edge per
//    pod; K/2 hosts per edge switch) — the K=8 tree of Fig. 10c/f, switch
//    diameter 5 (hops counted over switches, ToR..core..ToR);
//  * the HPCC evaluation tree (Section 6.1): 16 core, 20 agg, 20 ToR,
//    320 servers, 16 per rack.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.h"

namespace pint {

struct FatTreeNodes {
  std::vector<NodeId> cores;
  std::vector<NodeId> aggs;
  std::vector<NodeId> edges;  // ToRs
  std::vector<NodeId> hosts;
};

struct FatTree {
  Graph graph;
  FatTreeNodes nodes;

  // Host's rack (ToR index) for locality-aware traffic generation.
  std::vector<std::uint32_t> host_rack;
};

// Canonical K-ary fat-tree; K must be even.
FatTree make_fat_tree(unsigned k_ary, bool with_hosts = true);

// The HPCC evaluation topology of Section 6.1 (scaled by `scale` in (0,1]
// for faster simulation: scale=0.5 halves every tier, min 1 per tier).
FatTree make_hpcc_fat_tree(double scale = 1.0);

}  // namespace pint
