#include "topology/fat_tree.h"

#include <algorithm>
#include <stdexcept>

namespace pint {

FatTree make_fat_tree(unsigned k, bool with_hosts) {
  FatTreeOptions options;
  options.k = k;
  options.with_hosts = with_hosts;
  return make_fat_tree(options);
}

FatTree make_fat_tree(const FatTreeOptions& options) {
  const unsigned k = options.k;
  if (k < 2 || k % 2 != 0) throw std::invalid_argument("k_ary even, >= 2");
  const unsigned pods = options.pods == 0 ? k : options.pods;
  if (pods > k) throw std::invalid_argument("pods <= k");
  if (options.oversubscription < 1) {
    throw std::invalid_argument("oversubscription >= 1");
  }
  const unsigned half = k / 2;
  const unsigned hosts_per_edge = half * options.oversubscription;
  const unsigned num_core = half * half;
  const unsigned num_agg = pods * half;
  const unsigned num_edge = pods * half;
  const unsigned num_host = options.with_hosts ? num_edge * hosts_per_edge : 0;

  FatTree ft{Graph(num_core + num_agg + num_edge + num_host), {}, {}};
  NodeId next = 0;
  for (unsigned i = 0; i < num_core; ++i) ft.nodes.cores.push_back(next++);
  for (unsigned i = 0; i < num_agg; ++i) ft.nodes.aggs.push_back(next++);
  for (unsigned i = 0; i < num_edge; ++i) ft.nodes.edges.push_back(next++);
  for (unsigned i = 0; i < num_host; ++i) ft.nodes.hosts.push_back(next++);

  // Pod structure: pod p owns aggs [p*half, (p+1)*half) and same for edges.
  for (unsigned pod = 0; pod < pods; ++pod) {
    for (unsigned a = 0; a < half; ++a) {
      const NodeId agg = ft.nodes.aggs[pod * half + a];
      // Each agg connects to `half` cores: core group a.
      for (unsigned c = 0; c < half; ++c) {
        ft.graph.add_edge(agg, ft.nodes.cores[a * half + c]);
      }
      // Full bipartite agg-edge inside the pod.
      for (unsigned e = 0; e < half; ++e) {
        ft.graph.add_edge(agg, ft.nodes.edges[pod * half + e]);
      }
    }
  }
  if (options.with_hosts) {
    ft.host_rack.resize(num_host);
    for (unsigned e = 0; e < num_edge; ++e) {
      for (unsigned h = 0; h < hosts_per_edge; ++h) {
        const unsigned host_idx = e * hosts_per_edge + h;
        ft.graph.add_edge(ft.nodes.edges[e], ft.nodes.hosts[host_idx]);
        ft.host_rack[host_idx] = e;
      }
    }
  }
  return ft;
}

FatTree make_leaf_spine(unsigned leaves, unsigned spines,
                        unsigned hosts_per_leaf) {
  if (leaves < 2) throw std::invalid_argument("leaves >= 2");
  if (spines < 1) throw std::invalid_argument("spines >= 1");
  if (hosts_per_leaf < 1) throw std::invalid_argument("hosts_per_leaf >= 1");
  const unsigned num_host = leaves * hosts_per_leaf;

  // Spines fill the `cores` tier; the agg tier is empty (two switch tiers).
  FatTree ft{Graph(spines + leaves + num_host), {}, {}};
  NodeId next = 0;
  for (unsigned i = 0; i < spines; ++i) ft.nodes.cores.push_back(next++);
  for (unsigned i = 0; i < leaves; ++i) ft.nodes.edges.push_back(next++);
  for (unsigned i = 0; i < num_host; ++i) ft.nodes.hosts.push_back(next++);

  for (NodeId leaf : ft.nodes.edges) {
    for (NodeId spine : ft.nodes.cores) ft.graph.add_edge(leaf, spine);
  }
  ft.host_rack.resize(num_host);
  for (unsigned l = 0; l < leaves; ++l) {
    for (unsigned h = 0; h < hosts_per_leaf; ++h) {
      const unsigned host_idx = l * hosts_per_leaf + h;
      ft.graph.add_edge(ft.nodes.edges[l], ft.nodes.hosts[host_idx]);
      ft.host_rack[host_idx] = l;
    }
  }
  return ft;
}

FatTree make_hpcc_fat_tree(double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("scale in (0,1]");
  }
  const auto scaled = [scale](unsigned n) {
    return std::max(1u, static_cast<unsigned>(n * scale));
  };
  const unsigned num_core = scaled(16);
  const unsigned num_agg = scaled(20);
  const unsigned num_tor = scaled(20);
  const unsigned hosts_per_rack = 16;
  const unsigned num_host = num_tor * hosts_per_rack;

  FatTree ft{Graph(num_core + num_agg + num_tor + num_host), {}, {}};
  NodeId next = 0;
  for (unsigned i = 0; i < num_core; ++i) ft.nodes.cores.push_back(next++);
  for (unsigned i = 0; i < num_agg; ++i) ft.nodes.aggs.push_back(next++);
  for (unsigned i = 0; i < num_tor; ++i) ft.nodes.edges.push_back(next++);
  for (unsigned i = 0; i < num_host; ++i) ft.nodes.hosts.push_back(next++);

  // Full meshes between tiers (the paper's tree is non-blocking 400G fabric;
  // full bipartite keeps ECMP diversity comparable).
  for (NodeId agg : ft.nodes.aggs) {
    for (NodeId core : ft.nodes.cores) ft.graph.add_edge(agg, core);
  }
  for (NodeId tor : ft.nodes.edges) {
    for (NodeId agg : ft.nodes.aggs) ft.graph.add_edge(tor, agg);
  }
  ft.host_rack.resize(num_host);
  for (unsigned t = 0; t < num_tor; ++t) {
    for (unsigned h = 0; h < hosts_per_rack; ++h) {
      const unsigned host_idx = t * hosts_per_rack + h;
      ft.graph.add_edge(ft.nodes.edges[t], ft.nodes.hosts[host_idx]);
      ft.host_rack[host_idx] = t;
    }
  }
  return ft;
}

}  // namespace pint
