#include "topology/fat_tree.h"

#include <algorithm>
#include <stdexcept>

namespace pint {

FatTree make_fat_tree(unsigned k, bool with_hosts) {
  if (k < 2 || k % 2 != 0) throw std::invalid_argument("k_ary even, >= 2");
  const unsigned half = k / 2;
  const unsigned num_core = half * half;
  const unsigned num_agg = k * half;
  const unsigned num_edge = k * half;
  const unsigned num_host = with_hosts ? num_edge * half : 0;

  FatTree ft{Graph(num_core + num_agg + num_edge + num_host), {}, {}};
  NodeId next = 0;
  for (unsigned i = 0; i < num_core; ++i) ft.nodes.cores.push_back(next++);
  for (unsigned i = 0; i < num_agg; ++i) ft.nodes.aggs.push_back(next++);
  for (unsigned i = 0; i < num_edge; ++i) ft.nodes.edges.push_back(next++);
  for (unsigned i = 0; i < num_host; ++i) ft.nodes.hosts.push_back(next++);

  // Pod structure: pod p owns aggs [p*half, (p+1)*half) and same for edges.
  for (unsigned pod = 0; pod < k; ++pod) {
    for (unsigned a = 0; a < half; ++a) {
      const NodeId agg = ft.nodes.aggs[pod * half + a];
      // Each agg connects to `half` cores: core group a.
      for (unsigned c = 0; c < half; ++c) {
        ft.graph.add_edge(agg, ft.nodes.cores[a * half + c]);
      }
      // Full bipartite agg-edge inside the pod.
      for (unsigned e = 0; e < half; ++e) {
        ft.graph.add_edge(agg, ft.nodes.edges[pod * half + e]);
      }
    }
  }
  if (with_hosts) {
    ft.host_rack.resize(num_host);
    for (unsigned e = 0; e < num_edge; ++e) {
      for (unsigned h = 0; h < half; ++h) {
        const unsigned host_idx = e * half + h;
        ft.graph.add_edge(ft.nodes.edges[e], ft.nodes.hosts[host_idx]);
        ft.host_rack[host_idx] = e;
      }
    }
  }
  return ft;
}

FatTree make_hpcc_fat_tree(double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("scale in (0,1]");
  }
  const auto scaled = [scale](unsigned n) {
    return std::max(1u, static_cast<unsigned>(n * scale));
  };
  const unsigned num_core = scaled(16);
  const unsigned num_agg = scaled(20);
  const unsigned num_tor = scaled(20);
  const unsigned hosts_per_rack = 16;
  const unsigned num_host = num_tor * hosts_per_rack;

  FatTree ft{Graph(num_core + num_agg + num_tor + num_host), {}, {}};
  NodeId next = 0;
  for (unsigned i = 0; i < num_core; ++i) ft.nodes.cores.push_back(next++);
  for (unsigned i = 0; i < num_agg; ++i) ft.nodes.aggs.push_back(next++);
  for (unsigned i = 0; i < num_tor; ++i) ft.nodes.edges.push_back(next++);
  for (unsigned i = 0; i < num_host; ++i) ft.nodes.hosts.push_back(next++);

  // Full meshes between tiers (the paper's tree is non-blocking 400G fabric;
  // full bipartite keeps ECMP diversity comparable).
  for (NodeId agg : ft.nodes.aggs) {
    for (NodeId core : ft.nodes.cores) ft.graph.add_edge(agg, core);
  }
  for (NodeId tor : ft.nodes.edges) {
    for (NodeId agg : ft.nodes.aggs) ft.graph.add_edge(tor, agg);
  }
  ft.host_rack.resize(num_host);
  for (unsigned t = 0; t < num_tor; ++t) {
    for (unsigned h = 0; h < hosts_per_rack; ++h) {
      const unsigned host_idx = t * hosts_per_rack + h;
      ft.graph.add_edge(ft.nodes.edges[t], ft.nodes.hosts[host_idx]);
      ft.host_rack[host_idx] = t;
    }
  }
  return ft;
}

}  // namespace pint
