// Logarithm / exponentiation / multiply / divide in the data plane
// (paper Appendices B and C).
//
// Programmable switches cannot multiply or divide, but they can:
//   1. find the most-significant set bit of a word with a TCAM,
//   2. look up small (2^q entry) tables,
//   3. add and subtract.
// log2(x) is computed as (msb - q) + table[top q bits]; exp2 the same way in
// reverse; multiplication and division go through log/exp:
//   x * y = 2^(log2 x + log2 y),   x / y = 2^(log2 x - log2 y).
// With q = 8 the end-to-end error is below 1% (validated in tests and
// bench_dataplane_math), matching the paper's claim.
#pragma once

#include <cstdint>
#include <vector>

namespace pint {

class LogExpTables {
 public:
  // q = number of mantissa bits consulted; table sizes are 2^q.
  explicit LogExpTables(unsigned q = 8);

  // Approximate log2(x) for integer x >= 1, as a real (the switch would hold
  // it in fixed point; we keep a double here and convert at the boundary —
  // the lookup-table quantization, which dominates the error, is modeled
  // exactly).
  double log2(std::uint64_t x) const;

  // Approximate 2^x for real x >= 0.
  double exp2(double x) const;

  // Multiply / divide via log + exp (Appendix C).
  double multiply(std::uint64_t x, std::uint64_t y) const;
  double divide(std::uint64_t x, std::uint64_t y) const;

  unsigned q() const { return q_; }

 private:
  unsigned q_;
  std::vector<double> log_table_;  // log2(1 + i/2^q) for i in [0, 2^q)
  std::vector<double> exp_table_;  // 2^(i/2^q) for i in [0, 2^q)
};

}  // namespace pint
