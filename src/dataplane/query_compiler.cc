#include "dataplane/query_compiler.h"

namespace pint {

StagePlan plan_for_query(const Query& query) {
  StagePlan plan;
  switch (query.aggregation) {
    case AggregationType::kStaticPerFlow:
      plan = SwitchPipeline::path_tracing_plan();
      break;
    case AggregationType::kDynamicPerFlow:
      plan = SwitchPipeline::latency_quantile_plan();
      break;
    case AggregationType::kPerPacket:
      // The evaluated per-packet query is the HPCC utilization pipeline.
      plan = SwitchPipeline::hpcc_plan();
      break;
  }
  plan.query_name = query.name;
  return plan;
}

CompiledLayout compile_queries(const std::vector<Query>& queries,
                               const SwitchPipeline& hardware) {
  std::vector<StagePlan> plans;
  plans.reserve(queries.size() + 1);
  for (const Query& q : queries) plans.push_back(plan_for_query(q));
  if (queries.size() > 1) {
    // All switches must agree on the per-packet query subset; the selection
    // hash runs in parallel with the other queries' first stage (Section 5).
    plans.push_back(SwitchPipeline::query_selection_plan());
  }
  CompiledLayout out;
  out.stages_available = hardware.num_stages();
  out.fits = hardware.fits(plans);
  if (out.fits) {
    out.layout = hardware.layout(plans);
    out.stages_used = out.layout.depth();
  }
  return out;
}

}  // namespace pint
