#include "dataplane/log_exp.h"

#include <cmath>
#include <stdexcept>

#include "common/bitops.h"
#include "common/types.h"

namespace pint {

LogExpTables::LogExpTables(unsigned q) : q_(q) {
  if (q == 0 || q > 16) throw std::invalid_argument("q in [1,16]");
  const std::size_t n = std::size_t{1} << q;
  log_table_.resize(n);
  exp_table_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    log_table_[i] =
        std::log2(1.0 + static_cast<double>(i) / static_cast<double>(n));
    exp_table_[i] =
        std::exp2(static_cast<double>(i) / static_cast<double>(n));
  }
}

double LogExpTables::log2(std::uint64_t x) const {
  if (x == 0) throw std::invalid_argument("log2(0)");
  const unsigned ell = msb_index(x);  // x = 2^ell * alpha, alpha in [1,2)
  // Take the q bits below the leading one (padding with zeros if x is small).
  std::uint64_t mantissa;
  if (ell >= q_) {
    mantissa = (x >> (ell - q_)) & low_bits_mask(q_);
  } else {
    mantissa = (x << (q_ - ell)) & low_bits_mask(q_);
  }
  return static_cast<double>(ell) + log_table_[mantissa];
}

double LogExpTables::exp2(double x) const {
  if (x < 0.0) throw std::invalid_argument("exp2 of negative");
  const double ip = std::floor(x);
  const double frac = x - ip;
  const std::size_t n = exp_table_.size();
  const auto idx = static_cast<std::size_t>(frac * static_cast<double>(n));
  const double mant = exp_table_[idx < n ? idx : n - 1];
  return std::ldexp(mant, static_cast<int>(ip));
}

double LogExpTables::multiply(std::uint64_t x, std::uint64_t y) const {
  if (x == 0 || y == 0) return 0.0;
  return exp2(log2(x) + log2(y));
}

double LogExpTables::divide(std::uint64_t x, std::uint64_t y) const {
  if (y == 0) throw std::invalid_argument("divide by zero");
  if (x == 0) return 0.0;
  const double lx = log2(x), ly = log2(y);
  if (lx < ly) {
    // Switches keep quotients < 1 by exponentiating the negated difference
    // and taking the reciprocal via one more table step; numerically this is
    // 2^-(ly - lx).
    return 1.0 / exp2(ly - lx);
  }
  return exp2(lx - ly);
}

}  // namespace pint
