#include "dataplane/pipeline.h"

namespace pint {

PipelineLayout SwitchPipeline::layout(
    const std::vector<StagePlan>& plans) const {
  size_t depth = 0;
  for (const StagePlan& p : plans) depth = std::max(depth, p.depth());
  if (depth > num_stages_) {
    throw std::runtime_error("query mix needs " + std::to_string(depth) +
                             " stages; pipeline has " +
                             std::to_string(num_stages_));
  }
  PipelineLayout out;
  out.stages.resize(depth);
  for (size_t s = 0; s < depth; ++s) {
    for (const StagePlan& p : plans) {
      if (s < p.depth()) {
        out.stages[s].push_back(p.query_name + ": " + p.stage_ops[s]);
      }
    }
    if (out.stages[s].size() > ops_per_stage_) {
      throw std::runtime_error("stage " + std::to_string(s) + " needs " +
                               std::to_string(out.stages[s].size()) +
                               " ops; hardware has " +
                               std::to_string(ops_per_stage_));
    }
  }
  return out;
}

bool SwitchPipeline::fits(const std::vector<StagePlan>& plans) const {
  try {
    layout(plans);
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

StagePlan SwitchPipeline::path_tracing_plan() {
  // Section 5: "four pipeline stages. The first chooses a layer, another
  // computes g, the third hashes the switch ID ... and the last writes the
  // digest."
  return {"path_tracing",
          {"choose layer", "compute g", "hash switch ID", "write digest"}};
}

StagePlan SwitchPipeline::latency_quantile_plan() {
  // Section 5: compute latency; compress; compute g; overwrite value.
  return {"latency_quantile",
          {"compute latency", "compress value", "compute g", "write digest"}};
}

StagePlan SwitchPipeline::hpcc_plan() {
  // Section 5 / Fig. 6: six stages of utilization arithmetic, then value
  // approximation, then the digest write.
  return {"hpcc",
          {"hpcc arithmetic 1", "hpcc arithmetic 2", "hpcc arithmetic 3",
           "hpcc arithmetic 4", "hpcc arithmetic 5", "hpcc arithmetic 6",
           "compress value", "write digest"}};
}

StagePlan SwitchPipeline::query_selection_plan() {
  return {"query_selection", {"choose query subset"}};
}

}  // namespace pint
