// Fixed-point representation for programmable-switch arithmetic
// (paper Appendix C).
//
// Switch pipelines have no floating point; a real-valued variable in [0, R]
// is stored as an m-bit integer r representing R * r * 2^-m. This class
// models that representation so the HPCC utilization arithmetic (Appendix B)
// can be computed exactly the way a Tofino-class switch would.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace pint {

class FixedPoint {
 public:
  // `scale` R (often a power of two), `bits` m <= 32.
  FixedPoint(double scale, unsigned bits) : scale_(scale), bits_(bits) {
    if (bits == 0 || bits > 32) throw std::invalid_argument("bits in [1,32]");
    if (scale <= 0.0) throw std::invalid_argument("scale > 0");
  }

  std::uint32_t from_real(double x) const {
    if (x < 0.0) x = 0.0;
    if (x > scale_) x = scale_;
    const double r = x / scale_ * static_cast<double>(1ull << bits_);
    const auto max_r = static_cast<std::uint32_t>((1ull << bits_) - 1);
    const auto v = static_cast<std::uint64_t>(r);
    return v > max_r ? max_r : static_cast<std::uint32_t>(v);
  }

  double to_real(std::uint32_t r) const {
    return scale_ * static_cast<double>(r) /
           static_cast<double>(1ull << bits_);
  }

  // Integer addition keeps the scale; saturates at the top of the range.
  std::uint32_t add(std::uint32_t a, std::uint32_t b) const {
    const std::uint64_t s = std::uint64_t{a} + b;
    const auto max_r = static_cast<std::uint64_t>((1ull << bits_) - 1);
    return static_cast<std::uint32_t>(s > max_r ? max_r : s);
  }

  std::uint32_t sub_saturating(std::uint32_t a, std::uint32_t b) const {
    return a > b ? a - b : 0;
  }

  double scale() const { return scale_; }
  unsigned bits() const { return bits_; }
  double resolution() const {
    return scale_ / static_cast<double>(1ull << bits_);
  }

 private:
  double scale_;
  unsigned bits_;
};

}  // namespace pint
