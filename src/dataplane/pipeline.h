// Switch pipeline-stage accounting (paper Section 5, Fig. 6).
//
// Programmable switches execute a packet program as a fixed sequence of
// match-action stages. Each PINT query consumes stages (e.g. path tracing:
// choose layer → compute g → hash switch ID → write digest). Queries are
// mutually independent, so their per-stage operations can be *parallelized*:
// the pipeline depth is the maximum query depth, not the sum, as long as the
// per-stage operation count fits the hardware.
//
// This module checks that a query mix fits a pipeline, reproducing the
// paper's claim that path tracing + latency + HPCC fit the same 8 stages
// HPCC alone needs.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace pint {

// One query's use of the pipeline: a sequence of named operations, one per
// stage, executed in order.
struct StagePlan {
  std::string query_name;
  std::vector<std::string> stage_ops;  // stage_ops[i] runs in stage i
  size_t depth() const { return stage_ops.size(); }
};

struct PipelineLayout {
  // layout[stage] = list of "query: op" strings co-resident in that stage.
  std::vector<std::vector<std::string>> stages;
  size_t depth() const { return stages.size(); }
};

class SwitchPipeline {
 public:
  // `num_stages`: hardware stage count (Tofino-class: 12; the paper's Fig. 6
  // shows an 8-stage layout). `ops_per_stage`: concurrent ALU/hash units.
  SwitchPipeline(size_t num_stages, size_t ops_per_stage)
      : num_stages_(num_stages), ops_per_stage_(ops_per_stage) {
    if (num_stages == 0 || ops_per_stage == 0)
      throw std::invalid_argument("pipeline dimensions must be positive");
  }

  // Lays out the plans in parallel (stage i of every plan shares stage i of
  // the hardware). Returns the layout; throws if the mix does not fit.
  PipelineLayout layout(const std::vector<StagePlan>& plans) const;

  // True iff the mix fits without throwing.
  bool fits(const std::vector<StagePlan>& plans) const;

  size_t num_stages() const { return num_stages_; }
  size_t ops_per_stage() const { return ops_per_stage_; }

  // Canned plans reproducing Fig. 6 and Section 5's stage counts.
  static StagePlan path_tracing_plan();     // 4 stages
  static StagePlan latency_quantile_plan(); // 4 stages
  static StagePlan hpcc_plan();             // 8 stages (6 arithmetic + 2)
  static StagePlan query_selection_plan();  // 1 stage (choose query subset)

 private:
  size_t num_stages_;
  size_t ops_per_stage_;
};

}  // namespace pint
