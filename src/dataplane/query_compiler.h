// Query-to-pipeline compilation (paper Section 5 + Fig. 6, automated).
//
// Maps a PINT query mix onto switch pipeline stages: each aggregation type
// has a canonical stage plan, the Query Engine's subset selection occupies
// one stage (computed concurrently with the early HPCC arithmetic, per the
// paper), and independent queries parallelize. The compiler verifies the
// mix fits the hardware and emits the layout — the programmatic version of
// the paper's hand-drawn Fig. 6.
#pragma once

#include <vector>

#include "dataplane/pipeline.h"
#include "pint/query.h"

namespace pint {

struct CompiledLayout {
  PipelineLayout layout;
  std::size_t stages_used = 0;
  std::size_t stages_available = 0;
  bool fits = false;
};

// Stage plan for one query, named after it.
StagePlan plan_for_query(const Query& query);

// Compile a query mix for the given hardware; multi-query mixes add the
// query-subset-selection stage automatically.
CompiledLayout compile_queries(const std::vector<Query>& queries,
                               const SwitchPipeline& hardware);

}  // namespace pint
