#include "scenario/scenario_spec.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "pint/policy.h"

namespace pint::scenario {

namespace {

// Hard ceilings: a parsed-ok spec must describe a simulation a test
// machine can actually run (the fuzz target parses arbitrary bytes).
constexpr std::size_t kMaxSpecBytes = 1 << 20;
constexpr std::size_t kMaxErrors = 64;
constexpr std::size_t kMaxEpisodes = 64;
constexpr std::size_t kMaxExpects = 64;
constexpr std::size_t kMaxCdfPoints = 64;
constexpr std::size_t kMaxTuning = 64;
constexpr std::size_t kMaxNameLen = 64;

struct Parser {
  ScenarioSpec spec;
  std::vector<ScenarioParseError> errors;
  int line_no = 0;
  bool have_scenario = false;
  bool have_seed = false;
  bool have_topology = false;
  bool have_sim = false;
  bool have_traffic = false;

  void error(ParseErrorCode code, std::string message) {
    if (errors.size() < kMaxErrors) {
      errors.push_back({line_no, code, std::move(message)});
    }
  }
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end && !s.empty();
}

bool parse_double(std::string_view s, double& out) {
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end && std::isfinite(out);
}

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

bool valid_name(std::string_view s) {
  if (s.empty() || s.size() > kMaxNameLen) return false;
  return std::all_of(s.begin(), s.end(), is_name_char);
}

// "edge0-agg1": two role+index node names joined by a dash.
bool valid_link_name(std::string_view s) {
  const std::size_t dash = s.find('-');
  if (dash == std::string_view::npos || dash == 0 || dash + 1 >= s.size()) {
    return false;
  }
  const auto valid_node = [](std::string_view node) {
    static constexpr std::string_view kRoles[] = {"core", "agg", "edge",
                                                  "host"};
    for (const std::string_view role : kRoles) {
      if (node.size() > role.size() && node.substr(0, role.size()) == role) {
        std::uint64_t idx = 0;
        return parse_u64(node.substr(role.size()), idx) && idx < 1'000'000;
      }
    }
    return false;
  };
  return s.size() <= 2 * kMaxNameLen && valid_node(s.substr(0, dash)) &&
         valid_node(s.substr(dash + 1));
}

// Splits "key=value"; returns false (and reports) on malformed tokens.
bool split_kv(Parser& p, std::string_view token, std::string_view& key,
              std::string_view& value) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 > token.size()) {
    p.error(ParseErrorCode::kBadValue,
            "expected key=value, got '" + std::string(token) + "'");
    return false;
  }
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

struct KvReader {
  Parser& p;
  std::string_view directive;

  bool u64(std::string_view key, std::string_view value, std::uint64_t lo,
           std::uint64_t hi, std::uint64_t& out) {
    std::uint64_t v = 0;
    if (!parse_u64(value, v)) {
      p.error(ParseErrorCode::kBadValue, std::string(directive) + " " +
                                             std::string(key) +
                                             ": not an integer");
      return false;
    }
    if (v < lo || v > hi) {
      std::ostringstream os;
      os << directive << " " << key << "=" << v << " outside [" << lo << ", "
         << hi << "]";
      p.error(ParseErrorCode::kOutOfRange, os.str());
      return false;
    }
    out = v;
    return true;
  }

  bool real(std::string_view key, std::string_view value, double lo, double hi,
            double& out) {
    double v = 0.0;
    if (!parse_double(value, v)) {
      p.error(ParseErrorCode::kBadValue, std::string(directive) + " " +
                                             std::string(key) +
                                             ": not a number");
      return false;
    }
    if (v < lo || v > hi) {
      std::ostringstream os;
      os << directive << " " << key << "=" << v << " outside [" << lo << ", "
         << hi << "]";
      p.error(ParseErrorCode::kOutOfRange, os.str());
      return false;
    }
    out = v;
    return true;
  }

  void unknown(std::string_view key) {
    p.error(ParseErrorCode::kUnknownKey, std::string(directive) +
                                             ": unknown key '" +
                                             std::string(key) + "'");
  }
};

void parse_topology(Parser& p, const std::vector<std::string_view>& tokens) {
  if (p.have_topology) {
    p.error(ParseErrorCode::kDuplicate, "duplicate topology directive");
    return;
  }
  p.have_topology = true;
  if (tokens.size() < 2) {
    p.error(ParseErrorCode::kMissingField, "topology needs a kind");
    return;
  }
  TopologySpec& topo = p.spec.topology;
  if (tokens[1] == "fat_tree") {
    topo.kind = TopologyKind::kFatTree;
  } else if (tokens[1] == "leaf_spine") {
    topo.kind = TopologyKind::kLeafSpine;
  } else {
    p.error(ParseErrorCode::kUnknownKind,
            "unknown topology '" + std::string(tokens[1]) + "'");
    return;
  }
  KvReader kv{p, "topology"};
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(p, tokens[i], key, value)) continue;
    std::uint64_t v = 0;
    if (topo.kind == TopologyKind::kFatTree) {
      if (key == "k") {
        if (kv.u64(key, value, 2, 16, v)) {
          if (v % 2 != 0) {
            p.error(ParseErrorCode::kOutOfRange, "topology k must be even");
          } else {
            topo.k = static_cast<unsigned>(v);
          }
        }
      } else if (key == "pods") {
        if (kv.u64(key, value, 1, 16, v)) topo.pods = static_cast<unsigned>(v);
      } else if (key == "oversubscription") {
        if (kv.u64(key, value, 1, 8, v)) {
          topo.oversubscription = static_cast<unsigned>(v);
        }
      } else {
        kv.unknown(key);
      }
    } else {
      if (key == "leaves") {
        if (kv.u64(key, value, 2, 64, v)) {
          topo.leaves = static_cast<unsigned>(v);
        }
      } else if (key == "spines") {
        if (kv.u64(key, value, 1, 64, v)) {
          topo.spines = static_cast<unsigned>(v);
        }
      } else if (key == "hosts_per_leaf") {
        if (kv.u64(key, value, 1, 64, v)) {
          topo.hosts_per_leaf = static_cast<unsigned>(v);
        }
      } else {
        kv.unknown(key);
      }
    }
  }
  if (topo.kind == TopologyKind::kFatTree && topo.pods > topo.k) {
    p.error(ParseErrorCode::kOutOfRange, "topology pods must be <= k");
  }
}

void parse_sim(Parser& p, const std::vector<std::string_view>& tokens) {
  if (p.have_sim) {
    p.error(ParseErrorCode::kDuplicate, "duplicate sim directive");
    return;
  }
  p.have_sim = true;
  SimKnobs& sim = p.spec.sim;
  KvReader kv{p, "sim"};
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(p, tokens[i], key, value)) continue;
    std::uint64_t v = 0;
    double d = 0.0;
    if (key == "budget") {
      // >= 16 so every {path, X} query set of the runner's 8-bit-per-query
      // mix fits the global budget (the Query Engine rejects tighter mixes).
      if (kv.u64(key, value, 16, 64, v)) {
        sim.bit_budget = static_cast<unsigned>(v);
      }
    } else if (key == "transport") {
      if (value == "tcp" || value == "hpcc") {
        sim.transport = std::string(value);
      } else {
        p.error(ParseErrorCode::kBadValue,
                "sim transport must be tcp or hpcc");
      }
    } else if (key == "fanin") {
      if (value == "none" || value == "spsc" || value == "socketpair" ||
          value == "daemon" || value == "daemon_tcp") {
        sim.fanin = std::string(value);
      } else {
        p.error(ParseErrorCode::kBadValue,
                "sim fanin must be none, spsc, socketpair, daemon, or "
                "daemon_tcp");
      }
    } else if (key == "fanin_sinks") {
      if (kv.u64(key, value, 1, 16, v)) {
        sim.fanin_sinks = static_cast<unsigned>(v);
      }
    } else if (key == "duration_ms") {
      if (kv.u64(key, value, 1, 10'000, v)) {
        sim.duration = static_cast<TimeNs>(v) * kMilli;
      }
    } else if (key == "buffer_kb") {
      if (kv.u64(key, value, 16, 65'536, v)) {
        sim.buffer_bytes = static_cast<Bytes>(v) * 1024;
      }
    } else if (key == "host_gbps") {
      if (kv.real(key, value, 0.1, 400.0, d)) sim.host_gbps = d;
    } else if (key == "fabric_gbps") {
      if (kv.real(key, value, 0.1, 400.0, d)) sim.fabric_gbps = d;
    } else if (key == "pint_frequency") {
      // Capped at 0.5 so the runner's query mix keeps probability mass for
      // the queue/latency/util detection queries.
      if (kv.real(key, value, 0.01, 0.5, d)) sim.pint_frequency = d;
    } else if (key == "rto_us") {
      if (kv.u64(key, value, 100, 1'000'000, v)) {
        sim.rto = static_cast<TimeNs>(v) * kMicro;
      }
    } else {
      kv.unknown(key);
    }
  }
}

void parse_traffic(Parser& p, const std::vector<std::string_view>& tokens) {
  if (p.have_traffic) {
    p.error(ParseErrorCode::kDuplicate, "duplicate traffic directive");
    return;
  }
  p.have_traffic = true;
  TrafficSpec& traffic = p.spec.traffic;
  KvReader kv{p, "traffic"};
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(p, tokens[i], key, value)) continue;
    double d = 0.0;
    if (key == "load") {
      if (kv.real(key, value, 0.001, 0.999, d)) traffic.load = d;
    } else if (key == "dist") {
      if (value == "web_search" || value == "hadoop" || value == "custom") {
        traffic.dist = std::string(value);
      } else {
        p.error(ParseErrorCode::kUnknownKind,
                "traffic dist must be web_search, hadoop, or custom");
      }
    } else if (key == "zipf_s") {
      if (kv.real(key, value, 0.0, 5.0, d)) traffic.zipf_s = d;
    } else {
      kv.unknown(key);
    }
  }
}

void parse_cdf_point(Parser& p, const std::vector<std::string_view>& tokens) {
  if (p.spec.traffic.custom_cdf.size() >= kMaxCdfPoints) {
    p.error(ParseErrorCode::kOutOfRange, "too many cdf_point directives");
    return;
  }
  CdfPoint point;
  bool have_size = false, have_p = false;
  KvReader kv{p, "cdf_point"};
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(p, tokens[i], key, value)) continue;
    std::uint64_t v = 0;
    double d = 0.0;
    if (key == "size") {
      if (kv.u64(key, value, 1, 1'000'000'000, v)) {
        point.size = static_cast<Bytes>(v);
        have_size = true;
      }
    } else if (key == "p") {
      if (kv.real(key, value, 1e-9, 1.0, d)) {
        point.cum_prob = d;
        have_p = true;
      }
    } else {
      kv.unknown(key);
    }
  }
  if (!have_size || !have_p) {
    p.error(ParseErrorCode::kMissingField, "cdf_point needs size= and p=");
    return;
  }
  p.spec.traffic.custom_cdf.push_back(point);
}

void parse_episode(Parser& p, const std::vector<std::string_view>& tokens) {
  if (p.spec.episodes.size() >= kMaxEpisodes) {
    p.error(ParseErrorCode::kOutOfRange, "too many episodes");
    return;
  }
  if (tokens.size() < 2) {
    p.error(ParseErrorCode::kMissingField, "episode needs a kind");
    return;
  }
  EpisodeSpec ep;
  bool needs_link = true;
  if (tokens[1] == "microburst") {
    ep.kind = EpisodeKind::kMicroburst;
    needs_link = false;
  } else if (tokens[1] == "link_failure") {
    ep.kind = EpisodeKind::kLinkFailure;
  } else if (tokens[1] == "loss_burst") {
    ep.kind = EpisodeKind::kLossBurst;
  } else if (tokens[1] == "reorder") {
    ep.kind = EpisodeKind::kReorder;
  } else if (tokens[1] == "path_flap") {
    ep.kind = EpisodeKind::kPathFlap;
  } else {
    p.error(ParseErrorCode::kUnknownKind,
            "unknown episode '" + std::string(tokens[1]) + "'");
    return;
  }
  KvReader kv{p, "episode"};
  bool have_at = false;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(p, tokens[i], key, value)) continue;
    std::uint64_t v = 0;
    double d = 0.0;
    if (key == "at_ms") {
      if (kv.u64(key, value, 0, 10'000, v)) {
        ep.at = static_cast<TimeNs>(v) * kMilli;
        have_at = true;
      }
    } else if (key == "end_ms" || key == "recover_ms") {
      if (kv.u64(key, value, 0, 10'000, v)) {
        ep.end = static_cast<TimeNs>(v) * kMilli;
      }
    } else if (key == "link") {
      if (valid_link_name(value)) {
        ep.link = std::string(value);
      } else {
        p.error(ParseErrorCode::kBadValue,
                "episode link must look like edge0-agg1");
      }
    } else if (key == "rate_factor") {
      if (kv.real(key, value, 1e-6, 1.0, d)) ep.rate_factor = d;
    } else if (key == "prob") {
      if (kv.real(key, value, 0.0, 1.0, d)) ep.prob = d;
    } else if (key == "jitter_us") {
      if (kv.u64(key, value, 1, 1'000'000, v)) {
        ep.jitter = static_cast<TimeNs>(v) * kMicro;
      }
    } else if (key == "period_us") {
      if (kv.u64(key, value, 1, 1'000'000, v)) {
        ep.period = static_cast<TimeNs>(v) * kMicro;
      }
    } else if (key == "victim_host") {
      if (kv.u64(key, value, 0, 1'000'000, v)) {
        ep.victim_host = static_cast<unsigned>(v);
      }
    } else if (key == "flows") {
      if (kv.u64(key, value, 1, 1024, v)) ep.flows = static_cast<unsigned>(v);
    } else if (key == "size_kb") {
      if (kv.u64(key, value, 1, 1'000'000, v)) {
        ep.flow_size = static_cast<Bytes>(v) * 1000;
      }
    } else if (key == "probe_kb") {
      if (kv.u64(key, value, 1, 1'000'000, v)) {
        ep.probe_size = static_cast<Bytes>(v) * 1000;
      }
    } else {
      kv.unknown(key);
    }
  }
  if (!have_at) {
    p.error(ParseErrorCode::kMissingField, "episode needs at_ms=");
    return;
  }
  if (needs_link && ep.link.empty()) {
    p.error(ParseErrorCode::kMissingField,
            "episode " + std::string(tokens[1]) + " needs link=");
    return;
  }
  if (ep.end != 0 && ep.end < ep.at) {
    p.error(ParseErrorCode::kOutOfRange, "episode ends before it starts");
    return;
  }
  if (ep.kind == EpisodeKind::kPathFlap && ep.period == 0) {
    p.error(ParseErrorCode::kMissingField, "path_flap needs period_us=");
    return;
  }
  if ((ep.kind == EpisodeKind::kLossBurst ||
       ep.kind == EpisodeKind::kReorder ||
       ep.kind == EpisodeKind::kPathFlap) &&
      ep.end == 0) {
    p.error(ParseErrorCode::kMissingField, "episode needs end_ms=");
    return;
  }
  p.spec.episodes.push_back(std::move(ep));
}

void parse_expect(Parser& p, const std::vector<std::string_view>& tokens) {
  if (p.spec.expects.size() >= kMaxExpects) {
    p.error(ParseErrorCode::kOutOfRange, "too many expects");
    return;
  }
  if (tokens.size() < 2) {
    p.error(ParseErrorCode::kMissingField, "expect needs a kind");
    return;
  }
  ExpectSpec ex;
  ex.what = std::string(tokens[1]);
  const bool known =
      ex.what == "microburst_detected" || ex.what == "tomography_hotspot" ||
      ex.what == "anomaly" || ex.what == "load" || ex.what == "deliveries" ||
      ex.what == "injected_losses";
  if (!known) {
    p.error(ParseErrorCode::kUnknownKind, "unknown expect '" + ex.what + "'");
    return;
  }
  KvReader kv{p, "expect"};
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(p, tokens[i], key, value)) continue;
    std::uint64_t v = 0;
    double d = 0.0;
    if (key == "switch") {
      if (valid_name(value)) {
        ex.node = std::string(value);
      } else {
        p.error(ParseErrorCode::kBadValue, "expect switch: bad node name");
      }
    } else if (key == "min") {
      if (kv.real(key, value, 0.0, 1e18, d)) ex.min_value = d;
    } else if (key == "max") {
      if (kv.real(key, value, 0.0, 1e18, d)) ex.max_value = d;
    } else if (key == "min_events") {
      if (kv.u64(key, value, 1, 1'000'000'000, v)) ex.min_events = v;
    } else {
      kv.unknown(key);
    }
  }
  if ((ex.what == "microburst_detected" || ex.what == "tomography_hotspot") &&
      ex.node.empty()) {
    p.error(ParseErrorCode::kMissingField, "expect " + ex.what +
                                               " needs switch=");
    return;
  }
  if (ex.what == "load" && ex.max_value <= ex.min_value) {
    p.error(ParseErrorCode::kOutOfRange, "expect load needs min= < max=");
    return;
  }
  if ((ex.what == "deliveries" || ex.what == "injected_losses" ||
       ex.what == "anomaly") &&
      ex.min_events == 0) {
    p.error(ParseErrorCode::kMissingField,
            "expect " + ex.what + " needs min_events=");
    return;
  }
  p.spec.expects.push_back(std::move(ex));
}

void parse_tune(Parser& p, const std::vector<std::string_view>& tokens) {
  if (tokens.size() < 3) {
    p.error(ParseErrorCode::kMissingField,
            "tune needs an app name and key=value pairs");
    return;
  }
  if (!valid_name(tokens[1])) {
    p.error(ParseErrorCode::kBadValue, "tune: bad app name");
    return;
  }
  KvReader kv{p, "tune"};
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(p, tokens[i], key, value)) continue;
    if (!valid_name(key)) {
      p.error(ParseErrorCode::kBadValue, "tune: bad key name");
      continue;
    }
    double d = 0.0;
    if (tokens[1] == "store" && key == "policy") {
      // Symbolic knob: the tuning map is numeric, so policy names flatten
      // to their StorePolicyKind code ("store.policy" -> 0/1/2).
      const auto kind = parse_store_policy(value);
      if (!kind) {
        p.error(ParseErrorCode::kBadValue,
                "tune store policy= must be lru, doorkeeper, or tinylfu");
        continue;
      }
      d = static_cast<double>(static_cast<int>(*kind));
    } else if (!kv.real(key, value, 0.0, 1e18, d)) {
      continue;
    }
    if (p.spec.tuning.size() >= kMaxTuning) {
      p.error(ParseErrorCode::kOutOfRange, "too many tune entries");
      return;
    }
    p.spec.tuning[std::string(tokens[1]) + "." + std::string(key)] = d;
  }
}

void validate_whole(Parser& p) {
  p.line_no = 0;
  if (!p.have_scenario) {
    p.error(ParseErrorCode::kMissingSection, "missing scenario directive");
  }
  TrafficSpec& traffic = p.spec.traffic;
  if (traffic.dist == "custom") {
    if (traffic.custom_cdf.empty()) {
      p.error(ParseErrorCode::kMissingSection,
              "dist=custom needs cdf_point directives");
    } else {
      // Pre-validate what FlowSizeDist would reject so a parsed-ok spec
      // never throws downstream.
      const auto& cdf = traffic.custom_cdf;
      for (std::size_t i = 1; i < cdf.size(); ++i) {
        if (cdf[i].size < cdf[i - 1].size) {
          p.error(ParseErrorCode::kOutOfRange,
                  "custom CDF sizes must be non-decreasing");
          break;
        }
        if (cdf[i].cum_prob <= cdf[i - 1].cum_prob) {
          p.error(ParseErrorCode::kOutOfRange,
                  "custom CDF probabilities must be strictly increasing");
          break;
        }
      }
      if (std::abs(cdf.back().cum_prob - 1.0) > 1e-9) {
        p.error(ParseErrorCode::kOutOfRange,
                "custom CDF must end at probability 1");
      }
    }
  } else if (!traffic.custom_cdf.empty()) {
    p.error(ParseErrorCode::kOutOfRange,
            "cdf_point requires traffic dist=custom");
  }
  for (const EpisodeSpec& ep : p.spec.episodes) {
    if (ep.at >= p.spec.sim.duration) {
      p.error(ParseErrorCode::kOutOfRange,
              "episode starts at or after sim duration");
      break;
    }
  }
}

}  // namespace

const char* to_string(ParseErrorCode code) {
  switch (code) {
    case ParseErrorCode::kUnknownDirective: return "unknown-directive";
    case ParseErrorCode::kUnknownKind: return "unknown-kind";
    case ParseErrorCode::kUnknownKey: return "unknown-key";
    case ParseErrorCode::kBadValue: return "bad-value";
    case ParseErrorCode::kOutOfRange: return "out-of-range";
    case ParseErrorCode::kMissingField: return "missing-field";
    case ParseErrorCode::kDuplicate: return "duplicate";
    case ParseErrorCode::kMissingSection: return "missing-section";
  }
  return "unknown";
}

ScenarioParseResult parse_scenario(std::string_view text) {
  ScenarioParseResult result;
  Parser p;
  if (text.size() > kMaxSpecBytes) {
    p.error(ParseErrorCode::kOutOfRange, "spec exceeds 1 MiB");
    result.errors = std::move(p.errors);
    return result;
  }

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = nl == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, nl - pos);
    ++p.line_no;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;

    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;

    const std::vector<std::string_view> tokens = tokenize(line);
    const std::string_view directive = tokens[0];
    if (directive == "scenario") {
      if (p.have_scenario) {
        p.error(ParseErrorCode::kDuplicate, "duplicate scenario directive");
      } else if (tokens.size() != 2 || !valid_name(tokens[1])) {
        p.error(ParseErrorCode::kBadValue,
                "scenario needs one [A-Za-z0-9_-] name");
      } else {
        p.have_scenario = true;
        p.spec.name = std::string(tokens[1]);
      }
    } else if (directive == "seed") {
      std::uint64_t v = 0;
      if (p.have_seed) {
        p.error(ParseErrorCode::kDuplicate, "duplicate seed directive");
      } else if (tokens.size() != 2 || !parse_u64(tokens[1], v)) {
        p.error(ParseErrorCode::kBadValue, "seed needs one integer");
      } else {
        p.have_seed = true;
        p.spec.seed = v;
      }
    } else if (directive == "topology") {
      parse_topology(p, tokens);
    } else if (directive == "sim") {
      parse_sim(p, tokens);
    } else if (directive == "traffic") {
      parse_traffic(p, tokens);
    } else if (directive == "cdf_point") {
      parse_cdf_point(p, tokens);
    } else if (directive == "episode") {
      parse_episode(p, tokens);
    } else if (directive == "expect") {
      parse_expect(p, tokens);
    } else if (directive == "tune") {
      parse_tune(p, tokens);
    } else {
      p.error(ParseErrorCode::kUnknownDirective,
              "unknown directive '" + std::string(directive) + "'");
    }
    if (p.errors.size() >= kMaxErrors) break;
  }

  validate_whole(p);
  if (p.errors.empty()) {
    result.spec = std::move(p.spec);
  } else {
    result.errors = std::move(p.errors);
  }
  return result;
}

ScenarioParseResult parse_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ScenarioParseResult result;
    result.errors.push_back({0, ParseErrorCode::kMissingSection,
                             "cannot read scenario file: " + path});
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  return parse_scenario(text);
}

}  // namespace pint::scenario
