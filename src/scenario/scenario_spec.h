// Declarative simulation scenarios (.scn files).
//
// The paper's evaluation (Sections 2, 6) is a matrix of topology x workload
// x stress condition; this module makes that matrix data instead of code
// (the BASEL principle from PAPERS.md: behavior under stress should come
// from explicit declarative specifications). A ScenarioSpec composes a
// parameterized topology, CDF-driven Poisson/Zipf traffic, scripted fault
// episodes, and the *expected detections* — what the telemetry apps must
// report for the scenario to pass.
//
// The format is line-based, one directive per line, `#` comments:
//
//   scenario  link_failure_demo
//   seed      11
//   topology  fat_tree k=4 oversubscription=1
//   sim       budget=16 transport=tcp duration_ms=8 buffer_kb=256 fanin=daemon
//   traffic   load=0.30 dist=web_search zipf_s=0.9
//   episode   link_failure at_ms=2 recover_ms=6 link=edge0-agg0 rate_factor=0.02
//   tune      microburst min_baseline=64
//   expect    tomography_hotspot switch=edge0
//
// Parsing NEVER throws: malformed input produces typed ScenarioParseErrors
// with line numbers (the fuzz target feeds arbitrary bytes through here).
// Range limits on every knob keep a hostile spec from describing an
// absurdly large simulation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "workload/flow_size_dist.h"

namespace pint::scenario {

enum class ParseErrorCode : std::uint8_t {
  kUnknownDirective,
  kUnknownKind,     // bad topology/episode/expect kind token
  kUnknownKey,      // key=value key not valid for this directive
  kBadValue,        // token is not key=value, or value fails to parse
  kOutOfRange,      // parsed fine but outside the accepted range
  kMissingField,    // a required key never appeared
  kDuplicate,       // a one-shot directive appeared twice
  kMissingSection,  // spec ended without a mandatory directive
};

struct ScenarioParseError {
  int line = 0;  // 1-based; 0 for whole-spec errors
  ParseErrorCode code = ParseErrorCode::kBadValue;
  std::string message;
};

const char* to_string(ParseErrorCode code);

enum class TopologyKind : std::uint8_t { kFatTree, kLeafSpine };

struct TopologySpec {
  TopologyKind kind = TopologyKind::kFatTree;
  // fat_tree knobs (topology/fat_tree.h FatTreeOptions)
  unsigned k = 4;
  unsigned pods = 0;  // 0 = all k
  unsigned oversubscription = 1;
  // leaf_spine knobs
  unsigned leaves = 4;
  unsigned spines = 4;
  unsigned hosts_per_leaf = 4;
};

struct TrafficSpec {
  double load = 0.3;                  // of aggregate host bandwidth
  std::string dist = "web_search";    // named dist, or "custom"
  double zipf_s = 0.0;                // pair-popularity skew (0 = uniform)
  std::vector<CdfPoint> custom_cdf;   // rows from `cdf_point` directives
};

struct SimKnobs {
  unsigned bit_budget = 16;
  std::string transport = "tcp";      // "tcp" | "hpcc"
  // Sink fan-in topology for the observer stream: "none" runs the apps
  // in-process on the simulator's sink (the default); the other values
  // route every sink packet through a FanInPipeline (sim/fanin.h) and
  // feed the apps from the central collector instead — "daemon" and
  // "daemon_tcp" cross real unix-domain / localhost-TCP sockets through
  // a CollectorDaemon.
  std::string fanin = "none";  // "none"|"spsc"|"socketpair"|"daemon"|"daemon_tcp"
  unsigned fanin_sinks = 2;    // sink hosts when fanin != none
  TimeNs duration = 8 * kMilli;
  Bytes buffer_bytes = 256 * 1024;
  double host_gbps = 10.0;
  double fabric_gbps = 40.0;
  double pint_frequency = 0.15;       // hpcc-query share of the mix
  // Retransmission timeout. The simulator default (5ms) is over half a
  // typical 8ms scenario: one un-recovered loss silences a flow for most
  // of the run, so loss/failure scenarios set this to ~1ms.
  TimeNs rto = 5 * kMilli;
};

enum class EpisodeKind : std::uint8_t {
  kMicroburst,   // incast storm of `flows` x `size` into `victim_host`
  kLinkFailure,  // degrade `link` to `rate_factor`, restore at `recover`
  kLossBurst,    // random drops with `prob` on `link` during [at, end]
  kReorder,      // extra jitter up to `jitter` on `link` during [at, end]
  kPathFlap,     // toggle `link` between `rate_factor` and 1 every `period`
};

struct EpisodeSpec {
  EpisodeKind kind = EpisodeKind::kMicroburst;
  TimeNs at = 0;          // episode start
  TimeNs end = 0;         // end / recovery time (0 = never for link_failure)
  std::string link;       // "edge0-agg0" (role+index names, see runner)
  double rate_factor = 0.02;
  double prob = 0.2;
  TimeNs jitter = 0;
  TimeNs period = 0;      // path_flap toggle period
  unsigned victim_host = 0;
  unsigned flows = 8;
  Bytes flow_size = 60'000;
  // Microburst only: size of a long-lived "probe" flow to the victim,
  // started at t=0 from a far host (0 = none). The probe's calm pre-storm
  // queue samples arm the detector's baseline, so the storm registers as a
  // change instead of being the flow's whole history.
  Bytes probe_size = 0;
};

// What a passing run must have detected. `what` is one of:
//   microburst_detected switch=<name>   — microburst app fired at <name>
//   tomography_hotspot  switch=<name>   — hottest-queue ranking puts <name>
//                                         first
//   anomaly             min_events=<n>  — anomaly detector fired >= n times
//   load                min=<f> max=<f> — mean fabric utilization in band
//   deliveries          min=<n>         — sanity floor on delivered packets
//   injected_losses     min=<n>         — the loss episode really dropped
struct ExpectSpec {
  std::string what;
  std::string node;
  double min_value = 0.0;
  double max_value = 0.0;
  std::uint64_t min_events = 0;
};

struct ScenarioSpec {
  std::string name;
  std::uint64_t seed = 1;
  TopologySpec topology;
  TrafficSpec traffic;
  SimKnobs sim;
  std::vector<EpisodeSpec> episodes;
  std::vector<ExpectSpec> expects;
  // `tune <app> key=value` knobs, flattened to "app.key" -> value; the
  // runner maps them onto detector configs (docs/SCENARIOS.md lists them).
  std::map<std::string, double> tuning;
};

struct ScenarioParseResult {
  std::optional<ScenarioSpec> spec;  // engaged iff errors is empty
  std::vector<ScenarioParseError> errors;

  bool ok() const { return spec.has_value(); }
};

// Parses a complete .scn document. Never throws; every problem is a typed
// error naming its line. On any error the spec is absent.
ScenarioParseResult parse_scenario(std::string_view text);

// Reads `path` and parses it; an unreadable file is a kMissingSection
// error on line 0.
ScenarioParseResult parse_scenario_file(const std::string& path);

}  // namespace pint::scenario
