// Executes a parsed ScenarioSpec end to end: builds the topology, drives
// CDF/Poisson/Zipf traffic and the scripted fault episodes through the
// discrete-event simulator in full-framework PINT mode, feeds the four
// telemetry apps (microburst, tomography, anomaly, load) as sink
// observers, and evaluates the spec's `expect` directives against what
// the apps actually detected.
//
// The runner swaps the simulator's default Section-6.4 query mix for a
// five-query detection mix via SimConfig::framework_builder:
//
//   path    8b @ 1.00  (every packet; re-keys samples to switches)
//   queue   8b @ rest  (dynamic queue occupancy -> microburst/tomography)
//   latency 8b @ 0.30  (dynamic hop latency     -> anomaly CUSUM)
//   hpcc    8b @ f     (per-packet utilization  -> congestion control)
//   util    8b @ 0.10  (dynamic utilization     -> load analysis)
//
// with f = SimKnobs::pint_frequency (<= 0.5) and rest = 0.6 - f, so the
// greedy Query Engine packs {path, X} pairs into a 16-bit global budget.
//
// Determinism: the same (spec, options) pair produces byte-identical
// ScenarioResult::report_bytes — the encoded observer stream — across
// runs; tests diff the bytes directly. Exception: under `sim fanin=` the
// stream is the *merged* collector replay, and for the daemon kinds the
// arrival interleaving across sink connections is scheduling-dependent,
// so only the per-source record streams (not the global byte order) are
// stable across runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pint/sink_report.h"
#include "scenario/scenario_spec.h"
#include "sim/simulator.h"
#include "topology/fat_tree.h"

namespace pint::scenario {

// A generated topology with stable role+index node names ("core0", "agg1",
// "edge2", "host3") matching the spec's `link=` / `switch=` references.
struct NamedTopology {
  FatTree tree;
  std::vector<bool> is_host;
  std::map<std::string, NodeId> by_name;
  std::vector<std::string> names;  // NodeId -> name
};

// Throws std::invalid_argument only for specs that bypassed the parser's
// range checks (a parsed-ok spec always builds).
NamedTopology build_topology(const TopologySpec& spec);

struct ScenarioRunOptions {
  // Multiplies the spec's sim duration (bench full mode stretches the run
  // to reach its packet floor; episode times are unscaled).
  double duration_scale = 1.0;
  // Control run: keep topology/traffic but skip every episode, to assert
  // the detectors stay quiet without the injected faults.
  bool suppress_episodes = false;
  // Capture the encoded observer stream for byte-identical determinism
  // checks (off in bench mode to keep memory flat).
  bool capture_report_bytes = true;
};

struct ExpectOutcome {
  ExpectSpec expect;
  bool passed = false;
  std::string detail;  // what was actually observed
};

struct ScenarioResult {
  std::string name;
  SimCounters counters;
  std::size_t flows_total = 0;
  std::size_t flows_completed = 0;

  // App-level observations (also exposed raw so control runs can assert
  // detectors stayed quiet without any expect directives).
  std::size_t microburst_events = 0;
  std::size_t anomaly_events = 0;
  // Flows shed by the apps' store policy (`tune store policy=`), summed
  // across the four detection apps' RecordingStores.
  std::size_t store_admissions_rejected = 0;
  double mean_fabric_utilization = 0.0;  // across switches, as a fraction
  std::string hottest_switch;            // by p90 queue depth ("" if none)

  // Fan-in transport accounting when `sim fanin=` routed the observer
  // stream through a FanInPipeline (`active` set); all-zeros otherwise.
  TransportCounters fanin_transport;
  // Receive-side integrity of the fan-in run: decode/frame errors and
  // epochs that did not close complete (both must stay 0 on a healthy run).
  std::uint64_t fanin_errors = 0;
  std::uint64_t fanin_incomplete_epochs = 0;

  std::vector<ExpectOutcome> outcomes;
  std::vector<std::uint8_t> report_bytes;

  bool all_passed() const {
    for (const ExpectOutcome& o : outcomes) {
      if (!o.passed) return false;
    }
    return true;
  }
};

// Runs the scenario to completion. Throws std::invalid_argument for specs
// whose references do not resolve (unknown link/switch/host names) — the
// parser cannot know the topology's size, so resolution happens here.
ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const ScenarioRunOptions& options = {});

}  // namespace pint::scenario
