#include "scenario/scenario_runner.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include <cstdio>
#include <cstdlib>
#include "apps/anomaly_detection.h"
#include "apps/load_analysis.h"
#include "apps/microburst.h"
#include "apps/tomography.h"
#include "pint/report_codec.h"
#include "sim/fanin.h"
#include "workload/traffic_gen.h"

namespace pint::scenario {

namespace {

void name_tier(NamedTopology& topo, const std::vector<NodeId>& nodes,
               const char* role) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::string name = role + std::to_string(i);
    topo.names[nodes[i]] = name;
    topo.by_name.emplace(std::move(name), nodes[i]);
  }
}

NodeId resolve_node(const NamedTopology& topo, const std::string& name) {
  const auto it = topo.by_name.find(name);
  if (it == topo.by_name.end()) {
    throw std::invalid_argument("scenario references unknown node '" + name +
                                "'");
  }
  return it->second;
}

std::pair<NodeId, NodeId> resolve_link(const NamedTopology& topo,
                                       const std::string& link) {
  const std::size_t dash = link.find('-');
  if (dash == std::string::npos) {
    throw std::invalid_argument("bad link name '" + link + "'");
  }
  return {resolve_node(topo, link.substr(0, dash)),
          resolve_node(topo, link.substr(dash + 1))};
}

double tuned(const ScenarioSpec& spec, const std::string& key,
             double fallback) {
  const auto it = spec.tuning.find(key);
  return it == spec.tuning.end() ? fallback : it->second;
}

// One scripted change to link state at a simulation time.
struct Transition {
  TimeNs at = 0;
  std::function<void()> apply;
};

// `sim fanin=` value -> stream kind (the parser already rejected others).
StreamKind fanin_kind(const std::string& name) {
  if (name == "spsc") return StreamKind::kSpscRing;
  if (name == "socketpair") return StreamKind::kSocketPair;
  if (name == "daemon") return StreamKind::kDaemonUnix;
  return StreamKind::kDaemonTcp;  // "daemon_tcp"
}

}  // namespace

NamedTopology build_topology(const TopologySpec& spec) {
  const auto make_tree = [&spec] {
    if (spec.kind == TopologyKind::kFatTree) {
      FatTreeOptions options;
      options.k = spec.k;
      options.pods = spec.pods;
      options.oversubscription = spec.oversubscription;
      return make_fat_tree(options);
    }
    return make_leaf_spine(spec.leaves, spec.spines, spec.hosts_per_leaf);
  };
  NamedTopology topo{make_tree(), {}, {}, {}};
  topo.is_host.assign(topo.tree.graph.num_nodes(), false);
  for (NodeId host : topo.tree.nodes.hosts) topo.is_host[host] = true;
  topo.names.resize(topo.tree.graph.num_nodes());
  name_tier(topo, topo.tree.nodes.cores, "core");
  name_tier(topo, topo.tree.nodes.aggs, "agg");
  name_tier(topo, topo.tree.nodes.edges, "edge");
  name_tier(topo, topo.tree.nodes.hosts, "host");
  return topo;
}

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const ScenarioRunOptions& options) {
  NamedTopology topo = build_topology(spec.topology);
  const std::vector<NodeId>& hosts = topo.tree.nodes.hosts;
  if (hosts.size() < 2) {
    throw std::invalid_argument("scenario topology needs >= 2 hosts");
  }

  // Detection apps, tunable from the spec's `tune` directives.
  MicroburstConfig micro_cfg;
  micro_cfg.window =
      static_cast<std::size_t>(tuned(spec, "microburst.window", 128));
  micro_cfg.detection_quantile =
      tuned(spec, "microburst.detection_quantile", 0.9);
  micro_cfg.burst_factor = tuned(spec, "microburst.burst_factor", 4.0);
  micro_cfg.min_baseline = static_cast<std::size_t>(
      tuned(spec, "microburst.min_baseline", 256));
  micro_cfg.min_queue = tuned(spec, "microburst.min_queue_kb", 0.0) * 1024.0;
  AnomalyConfig anomaly_cfg;
  anomaly_cfg.drift_allowance = tuned(spec, "anomaly.drift_allowance", 0.5);
  anomaly_cfg.threshold = tuned(spec, "anomaly.threshold", 8.0);
  anomaly_cfg.warmup =
      static_cast<std::size_t>(tuned(spec, "anomaly.warmup", 64));

  // Memory-bound tuning: `tune store ceiling_mb=.. policy=..` bounds the
  // sink-side per-flow stores and picks their admission/eviction policy
  // (parse_tune flattens the symbolic policy name to its numeric kind).
  const std::size_t store_ceiling = static_cast<std::size_t>(
      tuned(spec, "store.ceiling_mb", 0.0) * 1024.0 * 1024.0);
  const auto store_policy = static_cast<StorePolicyKind>(
      static_cast<int>(tuned(spec, "store.policy", 0.0)));

  QueueTomography tomography(spec.seed ^ 0x70406, store_ceiling, store_policy);
  TomographyObserver tomo_obs(tomography, "queue", "path");
  MicroburstObserver micro_obs("queue", micro_cfg, spec.seed ^ 0xB0257,
                               store_ceiling, store_policy);
  AnomalyObserver anomaly_obs("latency", anomaly_cfg, store_ceiling,
                              store_policy);
  LoadAnalyzer analyzer(tuned(spec, "load.ewma_alpha", 0.05),
                        spec.seed ^ 0x10AD);
  LoadObserver load_obs(analyzer, "util", "path", store_ceiling, store_policy);
  ReportEncoder encoder;
  EncodingObserver enc_obs(encoder);
  const bool fanin_on = spec.sim.fanin != "none";

  SimConfig cfg;
  cfg.telemetry = TelemetryMode::kPint;
  cfg.pint_full = true;
  cfg.pint_bit_budget = spec.sim.bit_budget;
  cfg.pint_frequency = spec.sim.pint_frequency;
  cfg.transport = spec.sim.transport == "hpcc" ? TransportKind::kHpcc
                                               : TransportKind::kTcpReno;
  cfg.switch_buffer_bytes = spec.sim.buffer_bytes;
  cfg.rto = spec.sim.rto;
  cfg.host_bandwidth_bps = spec.sim.host_gbps * 1e9;
  cfg.fabric_bandwidth_bps = spec.sim.fabric_gbps * 1e9;
  cfg.seed = spec.seed;
  cfg.framework_builder = [&](const SimConfig& c, const Graph& g,
                              const std::vector<bool>& is_host) {
    // Five-query detection mix (header comment): every set pairs the
    // always-on path query with one value query, so mass must sum to 1.
    const double f = c.pint_frequency;
    const double queue_freq = 0.6 - f;
    PathTracingConfig path_tuning;
    path_tuning.bits = 8;
    path_tuning.instances = 1;
    path_tuning.d = 5;
    DynamicAggregationConfig queue_tuning;
    queue_tuning.max_value = static_cast<double>(c.switch_buffer_bytes);
    DynamicAggregationConfig latency_tuning;
    latency_tuning.max_value = 1e8;  // hop latencies in ns
    DynamicAggregationConfig util_tuning;
    util_tuning.max_value = Simulator::kUtilScale * 100.0;
    PerPacketConfig cc_tuning;
    cc_tuning.eps = 0.025;
    cc_tuning.max_value = Simulator::kUtilScale * 100.0;
    std::vector<std::uint64_t> universe;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      if (!is_host[n]) universe.push_back(n);
    }
    PintFramework::Builder builder;
    builder.global_bit_budget(c.pint_bit_budget)
        .seed(c.seed ^ 0x6040)
        .switch_universe(std::move(universe))
        .add_query(make_path_query("path", 8, 1.0, path_tuning))
        .add_query(make_dynamic_query("queue",
                                      std::string(extractor::kQueueOccupancy),
                                      8, queue_freq, queue_tuning))
        .add_query(make_dynamic_query("latency",
                                      std::string(extractor::kHopLatency), 8,
                                      0.30, latency_tuning))
        .add_query(make_perpacket_query(
            "hpcc", std::string(extractor::kLinkUtilization), 8, f,
            cc_tuning))
        .add_query(make_dynamic_query(
            "util", std::string(extractor::kLinkUtilization), 8, 0.10,
            util_tuning));
    if (store_ceiling > 0) builder.memory_ceiling_bytes(store_ceiling);
    builder.default_store_policy(store_policy);
    // Under `sim fanin=` the apps hang off the central collector instead:
    // sink replicas inside the pipeline must not share these (unsynchronized)
    // observer objects across their shard threads.
    if (!fanin_on) {
      builder.add_observer(&tomo_obs)
          .add_observer(&micro_obs)
          .add_observer(&anomaly_obs)
          .add_observer(&load_obs);
      if (options.capture_report_bytes) builder.add_observer(&enc_obs);
    }
    return builder;
  };

  // Fan-in mode: the simulator's sink stream is mirrored through a
  // FanInPipeline — partitioned across sink hosts, framed, shipped over
  // the configured stream kind ("daemon"/"daemon_tcp": real sockets into
  // a CollectorDaemon), and the detection apps observe the *merged
  // collector* stream. Detections then prove the whole transport path,
  // not just the in-simulator decode.
  std::unique_ptr<FanInPipeline> pipeline;
  if (fanin_on) {
    FanInConfig fanin_cfg;
    fanin_cfg.num_sinks = spec.sim.fanin_sinks;
    fanin_cfg.shards_per_sink = 1;
    // Match FanInConfig's default burst size: big enough to amortize the
    // MPMC push and flow-key hashing per submit(span), small enough that
    // an episode's tail packets never sit staged past a detection window.
    fanin_cfg.batch_size = 256;
    fanin_cfg.stream = fanin_kind(spec.sim.fanin);
    fanin_cfg.max_frame_records = 256;
    pipeline = std::make_unique<FanInPipeline>(
        cfg.framework_builder(cfg, topo.tree.graph, topo.is_host), fanin_cfg);
    pipeline->collector().add_observer(&tomo_obs);
    pipeline->collector().add_observer(&micro_obs);
    pipeline->collector().add_observer(&anomaly_obs);
    pipeline->collector().add_observer(&load_obs);
    if (options.capture_report_bytes) {
      pipeline->collector().add_observer(&enc_obs);
    }
    cfg.sink_tap = [&pipeline](const Packet& packet, unsigned switch_hops) {
      pipeline->deliver(packet, switch_hops);
    };
  }

  Simulator sim(topo.tree.graph, topo.is_host, cfg);

  const TimeNs duration = static_cast<TimeNs>(
      static_cast<double>(spec.sim.duration) * options.duration_scale);

  // Background traffic.
  std::optional<FlowSizeDist> dist;
  if (spec.traffic.dist == "custom") {
    dist.emplace(spec.name + "_custom", spec.traffic.custom_cdf);
  } else {
    FlowSizeDist named = FlowSizeDist::web_search();
    if (!FlowSizeDist::named(spec.traffic.dist, named)) {
      throw std::invalid_argument("unknown flow-size dist '" +
                                  spec.traffic.dist + "'");
    }
    dist.emplace(std::move(named));
  }
  TrafficGenConfig traffic_cfg;
  traffic_cfg.load = spec.traffic.load;
  traffic_cfg.host_bandwidth_bps = cfg.host_bandwidth_bps;
  traffic_cfg.num_hosts = static_cast<std::uint32_t>(hosts.size());
  traffic_cfg.duration = duration;
  traffic_cfg.seed = spec.seed;
  traffic_cfg.zipf_s = spec.traffic.zipf_s;
  const std::vector<FlowArrival> arrivals =
      generate_traffic(traffic_cfg, *dist);
  for (const FlowArrival& fa : arrivals) {
    sim.add_flow(hosts[fa.src_host], hosts[fa.dst_host], fa.size, fa.start);
  }

  // Episodes: microburst storms become extra flows; link episodes become
  // scripted state transitions applied between run_until segments.
  std::vector<Transition> transitions;
  std::size_t flows_total = arrivals.size();
  // Long-lived probe flow into a victim host, started at t=0 from the far
  // side of the host range. For a microburst it arms the detector baseline;
  // for link episodes it guarantees foreground traffic across the faulted
  // link — background traffic is heavy-tailed enough that a 2ms episode on
  // one link can otherwise see no packets at all.
  const auto add_probe = [&](const EpisodeSpec& ep) {
    if (ep.probe_size == 0) return;
    if (ep.victim_host >= hosts.size()) {
      throw std::invalid_argument("episode victim_host out of range");
    }
    const std::uint32_t probe_src =
        (ep.victim_host + static_cast<std::uint32_t>(hosts.size()) / 2) %
        static_cast<std::uint32_t>(hosts.size());
    sim.add_flow(hosts[probe_src], hosts[ep.victim_host], ep.probe_size, 0);
    ++flows_total;
  };
  if (!options.suppress_episodes) {
    for (const EpisodeSpec& ep : spec.episodes) {
      switch (ep.kind) {
        case EpisodeKind::kMicroburst: {
          if (ep.victim_host >= hosts.size()) {
            throw std::invalid_argument("microburst victim_host out of range");
          }
          // Incast: `flows` simultaneous senders, preferring hosts in other
          // racks so the burst converges on the victim's edge downlink.
          const std::uint32_t victim_rack =
              topo.tree.host_rack[ep.victim_host];
          std::vector<std::uint32_t> senders;
          for (int pass = 0; pass < 2 && senders.size() < ep.flows; ++pass) {
            for (std::uint32_t i = 0;
                 i < hosts.size() && senders.size() < ep.flows; ++i) {
              const std::uint32_t h =
                  (ep.victim_host + 1 + i) %
                  static_cast<std::uint32_t>(hosts.size());
              if (h == ep.victim_host) continue;
              const bool other_rack = topo.tree.host_rack[h] != victim_rack;
              if (pass == 0 ? other_rack : !other_rack) senders.push_back(h);
            }
          }
          for (const std::uint32_t s : senders) {
            sim.add_flow(hosts[s], hosts[ep.victim_host], ep.flow_size,
                         ep.at);
            ++flows_total;
          }
          break;
        }
        case EpisodeKind::kLinkFailure: {
          const auto [a, b] = resolve_link(topo, ep.link);
          const double factor = ep.rate_factor;
          transitions.push_back(
              {ep.at, [&sim, a, b, factor] {
                 sim.set_link_rate_factor(a, b, factor);
               }});
          if (ep.end > 0) {
            transitions.push_back({ep.end, [&sim, a, b] {
                                     sim.set_link_rate_factor(a, b, 1.0);
                                   }});
          }
          break;
        }
        case EpisodeKind::kLossBurst: {
          const auto [a, b] = resolve_link(topo, ep.link);
          const double prob = ep.prob;
          transitions.push_back({ep.at, [&sim, a, b, prob] {
                                   sim.set_link_loss(a, b, prob);
                                   sim.set_link_loss(b, a, prob);
                                 }});
          transitions.push_back({ep.end, [&sim, a, b] {
                                   sim.set_link_loss(a, b, 0.0);
                                   sim.set_link_loss(b, a, 0.0);
                                 }});
          break;
        }
        case EpisodeKind::kReorder: {
          const auto [a, b] = resolve_link(topo, ep.link);
          const TimeNs jitter = ep.jitter;
          transitions.push_back({ep.at, [&sim, a, b, jitter] {
                                   sim.set_link_reorder(a, b, jitter);
                                   sim.set_link_reorder(b, a, jitter);
                                 }});
          transitions.push_back({ep.end, [&sim, a, b] {
                                   sim.set_link_reorder(a, b, 0);
                                   sim.set_link_reorder(b, a, 0);
                                 }});
          break;
        }
        case EpisodeKind::kPathFlap: {
          const auto [a, b] = resolve_link(topo, ep.link);
          const double factor = ep.rate_factor;
          bool degraded = false;
          std::size_t toggles = 0;
          for (TimeNs t = ep.at; t < ep.end && toggles < 1000;
               t += ep.period, ++toggles) {
            degraded = !degraded;
            const double f = degraded ? factor : 1.0;
            transitions.push_back({t, [&sim, a, b, f] {
                                     sim.set_link_rate_factor(a, b, f);
                                   }});
          }
          transitions.push_back({ep.end, [&sim, a, b] {
                                   sim.set_link_rate_factor(a, b, 1.0);
                                 }});
          break;
        }
      }
      add_probe(ep);
    }
  }
  std::stable_sort(transitions.begin(), transitions.end(),
                   [](const Transition& x, const Transition& y) {
                     return x.at < y.at;
                   });
  for (const Transition& tr : transitions) {
    if (tr.at >= duration) break;
    sim.run_until(tr.at);
    tr.apply();
    // Close a reporting epoch at every scripted state change, so the
    // fan-in stream exercises epoch brackets at the same boundaries the
    // fault episodes create.
    if (pipeline != nullptr) pipeline->ship_epoch();
    if (std::getenv("PINT_SCN_DEBUG") != nullptr) {
      std::fprintf(stderr, "dbg transition applied at %lld\n",
                   static_cast<long long>(tr.at));
    }
  }
  sim.run_until(duration);
  // Final epoch + end-of-stream; after shutdown() the collector (and the
  // apps it replays into) are safe to read from this thread.
  if (pipeline != nullptr) pipeline->shutdown();

  // Harvest results.
  ScenarioResult result;
  result.name = spec.name;
  result.counters = sim.counters();
  result.flows_total = flows_total;
  for (const FlowStats& fs : sim.flow_stats()) {
    if (fs.done) ++result.flows_completed;
  }
  result.microburst_events = micro_obs.events().size();
  result.anomaly_events = anomaly_obs.events().size();
  result.store_admissions_rejected =
      tomography.flow_store().admissions_rejected() +
      micro_obs.detectors().admissions_rejected() +
      anomaly_obs.detectors().admissions_rejected() +
      load_obs.path_store().admissions_rejected();
  if (pipeline != nullptr) {
    result.fanin_transport = pipeline->transport_counters();
    result.fanin_errors = pipeline->collector().errors_total();
    result.fanin_incomplete_epochs = pipeline->collector().incomplete_epochs();
  }

  const std::vector<SwitchLoad> loads = analyzer.all_loads();
  if (!loads.empty()) {
    double sum = 0.0;
    for (const SwitchLoad& l : loads) sum += l.mean_utilization;
    result.mean_fabric_utilization =
        sum / static_cast<double>(loads.size()) / Simulator::kUtilScale;
  }

  if (const char* dbg = std::getenv("PINT_SCN_DEBUG")) {
    (void)dbg;
    for (NodeId n = 0; n < topo.tree.graph.num_nodes(); ++n) {
      if (topo.is_host[n]) continue;
      const auto q50 = tomography.queue_quantile(n, 0.5);
      const auto q99 = tomography.queue_quantile(n, 0.99);
      std::fprintf(stderr, "dbg %s q50=%f q99=%f\n", topo.names[n].c_str(),
                   q50.value_or(-1), q99.value_or(-1));
    }
  }
  std::optional<SwitchId> hottest;
  double hottest_q90 = -1.0;
  for (NodeId n = 0; n < topo.tree.graph.num_nodes(); ++n) {
    if (topo.is_host[n]) continue;
    const auto q90 = tomography.queue_quantile(n, 0.9);
    if (q90.has_value() && *q90 > hottest_q90) {
      hottest_q90 = *q90;
      hottest = n;
    }
  }
  if (hottest.has_value()) result.hottest_switch = topo.names[*hottest];

  // A burst event names (flow, hop); the tomography path registry re-keys
  // it to the switch that produced the queue samples.
  struct FiredBurst {
    SwitchId at;
    MicroburstEvent event;
  };
  const auto burst_switches = [&]() {
    std::vector<FiredBurst> fired;
    for (const MicroburstObserver::FlowBurst& fb : micro_obs.events()) {
      const std::vector<SwitchId>* path =
          tomography.flow_store().find(fb.flow);
      if (path != nullptr && fb.event.hop >= 1 &&
          fb.event.hop <= path->size()) {
        fired.push_back({(*path)[fb.event.hop - 1], fb.event});
      }
    }
    return fired;
  };

  for (const ExpectSpec& ex : spec.expects) {
    ExpectOutcome outcome;
    outcome.expect = ex;
    std::ostringstream detail;
    if (ex.what == "microburst_detected") {
      const NodeId target = resolve_node(topo, ex.node);
      const std::vector<FiredBurst> fired = burst_switches();
      outcome.passed = std::any_of(
          fired.begin(), fired.end(),
          [target](const FiredBurst& fb) { return fb.at == target; });
      detail << result.microburst_events << " burst events; fired at:";
      for (const FiredBurst& fb : fired) {
        detail << " " << topo.names[fb.at] << "(q" << fb.event.recent_quantile
               << "/b" << fb.event.baseline_median << ")";
      }
    } else if (ex.what == "tomography_hotspot") {
      resolve_node(topo, ex.node);  // validate the reference
      outcome.passed = result.hottest_switch == ex.node;
      detail << "hottest switch by p90 queue: "
             << (result.hottest_switch.empty() ? "(none)"
                                               : result.hottest_switch);
    } else if (ex.what == "anomaly") {
      outcome.passed = result.anomaly_events >= ex.min_events;
      detail << result.anomaly_events << " anomaly events (need >= "
             << ex.min_events << ")";
    } else if (ex.what == "load") {
      outcome.passed = result.mean_fabric_utilization >= ex.min_value &&
                       result.mean_fabric_utilization <= ex.max_value;
      detail << "mean fabric utilization " << result.mean_fabric_utilization
             << " (band [" << ex.min_value << ", " << ex.max_value << "])";
    } else if (ex.what == "deliveries") {
      outcome.passed = result.counters.packets_delivered >= ex.min_events;
      detail << result.counters.packets_delivered
             << " packets delivered (need >= " << ex.min_events << ")";
    } else if (ex.what == "injected_losses") {
      outcome.passed = result.counters.packets_lost_injected >= ex.min_events;
      detail << result.counters.packets_lost_injected
             << " injected losses (need >= " << ex.min_events << ")";
    } else {
      outcome.passed = false;
      detail << "unknown expect kind";
    }
    outcome.detail = detail.str();
    result.outcomes.push_back(std::move(outcome));
  }

  if (options.capture_report_bytes) result.report_bytes = encoder.finish();
  return result;
}

}  // namespace pint::scenario
