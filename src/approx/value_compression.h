// Numeric value compression (paper Section 4.3).
//
// Telemetry values (latencies, utilizations) can be wider than the query's
// bit budget. PINT compresses them with either a multiplicative (1+eps)
// guarantee — encode a = [log_{(1+eps)^2} v] — or an additive guarantee —
// encode a = [v / 2*delta]. The congestion-control use case additionally uses
// *randomized* rounding [·]_R so that compression error is zero-mean across
// packets.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "common/types.h"
#include "hash/global_hash.h"

namespace pint {

// Multiplicative compressor: decoded value is within a (1+eps)^2 factor of
// the original, matching the paper's guarantee (they quote (1+eps) for
// half-integer rounding of log base (1+eps)^2).
//
// Code 0 is reserved for v == 0 so the full dynamic range [1, max_value]
// maps to codes [1, max_code].
class MultiplicativeCompressor {
 public:
  // eps in (0, 1); max_value is the largest value that must fit.
  MultiplicativeCompressor(double eps, double max_value)
      : eps_(eps), log_base_(2.0 * std::log1p(eps)) {
    if (eps <= 0.0 || eps >= 1.0) throw std::invalid_argument("eps in (0,1)");
    if (max_value < 1.0) throw std::invalid_argument("max_value >= 1");
    max_code_ = encode(max_value);
  }

  // Smallest value of eps usable when squeezing values up to `max_value`
  // into `bits` bits. E.g. 32-bit values into 16 bits admits eps = 0.0025
  // (paper's example).
  static double eps_for(double max_value, unsigned bits) {
    // Need log_{(1+eps)^2}(max_value) <= 2^bits - 2 (codes 0 reserved).
    const double codes = static_cast<double>((std::uint64_t{1} << bits) - 2);
    return std::expm1(std::log(max_value) / (2.0 * codes));
  }

  std::uint64_t encode(double v) const {
    if (v < 0.0) throw std::invalid_argument("negative value");
    if (v < 1.0) return 0;
    return 1 + static_cast<std::uint64_t>(
                   std::llround(std::log(v) / log_base_));
  }

  // Randomized-rounding encode (the [·]_R of Section 4.3): floor/ceil chosen
  // via the per-packet global hash so that E[code] equals the exact log and
  // compression bias cancels across packets.
  std::uint64_t encode_randomized(double v, const GlobalHash& h,
                                  PacketId packet) const {
    if (v < 0.0) throw std::invalid_argument("negative value");
    if (v < 1.0) return 0;
    const double x = std::log(v) / log_base_;
    const double fl = std::floor(x);
    const double frac = x - fl;
    const bool up = h.below(packet, frac);
    return 1 + static_cast<std::uint64_t>(fl) + (up ? 1 : 0);
  }

  double decode(std::uint64_t code) const {
    if (code == 0) return 0.0;
    return std::exp(static_cast<double>(code - 1) * log_base_);
  }

  // Number of bits needed for all codes up to max_value.
  unsigned bits_needed() const { return bit_width_of(max_code_); }

  double eps() const { return eps_; }

 private:
  static unsigned bit_width_of(std::uint64_t x) {
    unsigned w = 0;
    while (x != 0) {
      ++w;
      x >>= 1;
    }
    return w == 0 ? 1 : w;
  }

  double eps_;
  double log_base_;  // ln((1+eps)^2)
  std::uint64_t max_code_;
};

// Additive compressor: decoded value is within ±delta of the original.
// Saves ⌊log2 delta⌋ bits relative to exact encoding (Section 4.3).
class AdditiveCompressor {
 public:
  explicit AdditiveCompressor(double delta) : delta_(delta) {
    if (delta <= 0.0) throw std::invalid_argument("delta > 0");
  }

  std::uint64_t encode(double v) const {
    if (v < 0.0) throw std::invalid_argument("negative value");
    return static_cast<std::uint64_t>(std::llround(v / (2.0 * delta_)));
  }

  double decode(std::uint64_t code) const {
    return 2.0 * delta_ * static_cast<double>(code);
  }

  double delta() const { return delta_; }

 private:
  double delta_;
};

}  // namespace pint
