// Morris randomized counter (paper Section 4.3, "Randomized counting";
// Morris, CACM 1978).
//
// Counts up to n using O(log log n + log 1/eps) bits by incrementing the
// stored exponent probabilistically. PINT uses this idea for per-packet
// aggregations whose exact result would exceed the bit budget (e.g. counting
// high-latency hops along a path or summing per-hop quantities).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.h"

namespace pint {

class MorrisCounter {
 public:
  // `a` > 1 controls accuracy: relative std-dev is about sqrt((a-1)/2).
  // a = 2 is the classic Morris counter.
  explicit MorrisCounter(double a = 1.08) : a_(a) {}

  // Number of bits needed to store the exponent for counts up to n.
  static unsigned bits_needed(double a, double n) {
    const double max_exp = std::log1p(n * (a - 1.0)) / std::log(a);
    unsigned bits = 1;
    while ((1u << bits) < max_exp + 1) ++bits;
    return bits;
  }

  void increment(Rng& rng) {
    if (rng.uniform() < std::pow(a_, -static_cast<double>(exponent_))) {
      ++exponent_;
    }
  }

  // Unbiased estimate of the number of increments: (a^C - 1) / (a - 1).
  double estimate() const {
    return (std::pow(a_, static_cast<double>(exponent_)) - 1.0) / (a_ - 1.0);
  }

  std::uint32_t exponent() const { return exponent_; }
  void merge_max(const MorrisCounter& other) {
    // Used when a packet aggregates the max of per-hop counters.
    if (other.exponent_ > exponent_) exponent_ = other.exponent_;
  }

 private:
  double a_;
  std::uint32_t exponent_ = 0;
};

}  // namespace pint
