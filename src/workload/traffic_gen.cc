#include "workload/traffic_gen.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "workload/zipf.h"

namespace pint {

std::vector<FlowArrival> generate_traffic(const TrafficGenConfig& config,
                                          const FlowSizeDist& dist) {
  if (config.num_hosts < 2) throw std::invalid_argument(">= 2 hosts");
  if (config.load <= 0.0 || config.load >= 1.0)
    throw std::invalid_argument("load in (0,1)");
  if (config.zipf_s < 0.0) throw std::invalid_argument("zipf_s must be >= 0");
  Rng rng(config.seed ^ 0x7AFF1CULL);

  // Zipf pair popularity: rank r in [1, H*(H-1)] maps to the ordered host
  // pair (idx / (H-1), skip-diagonal idx % (H-1)), so rank 1 is the single
  // hottest pair and the tail pairs are almost never chosen.
  std::unique_ptr<ZipfDist> pair_zipf;
  if (config.zipf_s > 0.0) {
    const std::uint64_t num_pairs =
        static_cast<std::uint64_t>(config.num_hosts) * (config.num_hosts - 1);
    pair_zipf = std::make_unique<ZipfDist>(num_pairs, config.zipf_s);
  }

  // Aggregate flow arrival rate: load * total_capacity / mean_flow_size.
  const double total_capacity_Bps =
      config.host_bandwidth_bps / 8.0 * config.num_hosts;
  const double lambda = config.load * total_capacity_Bps / dist.mean();

  std::vector<FlowArrival> arrivals;
  double t = 0.0;
  const double horizon = static_cast<double>(config.duration) / 1e9;
  while (true) {
    t += rng.exponential(lambda);
    if (t >= horizon) break;
    FlowArrival fa;
    fa.start = static_cast<TimeNs>(t * 1e9);
    fa.size = dist.sample(rng);
    if (pair_zipf) {
      const std::uint64_t idx = pair_zipf->sample(rng) - 1;
      fa.src_host = static_cast<std::uint32_t>(idx / (config.num_hosts - 1));
      const std::uint32_t dst_r =
          static_cast<std::uint32_t>(idx % (config.num_hosts - 1));
      fa.dst_host = dst_r + (dst_r >= fa.src_host ? 1 : 0);
    } else {
      fa.src_host =
          static_cast<std::uint32_t>(rng.uniform_int(config.num_hosts));
      do {
        fa.dst_host =
            static_cast<std::uint32_t>(rng.uniform_int(config.num_hosts));
      } while (fa.dst_host == fa.src_host);
    }
    arrivals.push_back(fa);
  }
  return arrivals;
}

}  // namespace pint
