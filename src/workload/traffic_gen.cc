#include "workload/traffic_gen.h"

#include <algorithm>
#include <stdexcept>

namespace pint {

std::vector<FlowArrival> generate_traffic(const TrafficGenConfig& config,
                                          const FlowSizeDist& dist) {
  if (config.num_hosts < 2) throw std::invalid_argument(">= 2 hosts");
  if (config.load <= 0.0 || config.load >= 1.0)
    throw std::invalid_argument("load in (0,1)");
  Rng rng(config.seed ^ 0x7AFF1CULL);

  // Aggregate flow arrival rate: load * total_capacity / mean_flow_size.
  const double total_capacity_Bps =
      config.host_bandwidth_bps / 8.0 * config.num_hosts;
  const double lambda = config.load * total_capacity_Bps / dist.mean();

  std::vector<FlowArrival> arrivals;
  double t = 0.0;
  const double horizon = static_cast<double>(config.duration) / 1e9;
  while (true) {
    t += rng.exponential(lambda);
    if (t >= horizon) break;
    FlowArrival fa;
    fa.start = static_cast<TimeNs>(t * 1e9);
    fa.size = dist.sample(rng);
    fa.src_host = static_cast<std::uint32_t>(rng.uniform_int(config.num_hosts));
    do {
      fa.dst_host =
          static_cast<std::uint32_t>(rng.uniform_int(config.num_hosts));
    } while (fa.dst_host == fa.src_host);
    arrivals.push_back(fa);
  }
  return arrivals;
}

}  // namespace pint
