// Poisson traffic generation at a target load (paper Section 6.1: "Each
// server generates new flows according to a Poisson process, destined to
// random servers. The average flow arrival time is set so that the total
// network load is 50%").
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "workload/flow_size_dist.h"

namespace pint {

struct FlowArrival {
  std::uint32_t src_host = 0;
  std::uint32_t dst_host = 0;
  Bytes size = 0;
  TimeNs start = 0;
};

struct TrafficGenConfig {
  double load = 0.5;              // fraction of aggregate host bandwidth
  double host_bandwidth_bps = 10e9;
  std::uint32_t num_hosts = 64;
  TimeNs duration = 10 * kMilli;
  std::uint64_t seed = 7;
  // When > 0, (src, dst) pairs are drawn from a Zipf distribution with this
  // skew over the num_hosts*(num_hosts-1) ordered host pairs instead of
  // uniformly — a few hot pairs carry most flows (elephant communication
  // patterns). 0 keeps the paper's uniform "random servers" choice.
  double zipf_s = 0.0;
};

// All flow arrivals for the run, sorted by start time. Load is defined
// against aggregate host *access* bandwidth, matching the paper.
std::vector<FlowArrival> generate_traffic(const TrafficGenConfig& config,
                                          const FlowSizeDist& dist);

}  // namespace pint
