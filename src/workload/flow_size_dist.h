// Flow-size distributions (paper Section 6.1).
//
// The paper draws flow sizes from the web-search workload of DCTCP
// (Alizadeh et al., reference [3]) and the Hadoop workload measured at
// Facebook (Roy et al., reference [62]). The canonical encodings are the
// deciles of Figs. 7b/7c — the paper chose the tick marks "such that there
// are 10% of the flows between consecutive tick marks" — but scenario specs
// may supply arbitrary empirical CDF tables (size, cumulative probability),
// so the general representation is a validated CDF with log-linear
// interpolation between table points.
//
// Validation is strict and typed: an empty table, a zero size, a
// non-monotone size or probability column, or a final probability other
// than 1 is a std::invalid_argument at construction — never UB at sample
// time. A single-bucket table is legal and degenerates to a (near) point
// mass. Sampling is inclusive at the tail: sample_at(1.0) returns exactly
// the table's maximum size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace pint {

/// One empirical-CDF table row: `cum_prob` of all flows are of size
/// `size` bytes or smaller.
struct CdfPoint {
  Bytes size = 0;
  double cum_prob = 0.0;
};

class FlowSizeDist {
 public:
  /// `deciles[i]` = flow size at CDF (i+1)/10; 10 entries, ascending.
  FlowSizeDist(std::string name, std::vector<Bytes> deciles,
               Bytes min_size = 100);

  /// General empirical CDF: sizes ascending, probabilities strictly
  /// ascending in (0, 1], last probability exactly 1 (within 1e-9).
  /// `min_size` anchors the first bucket and must not exceed the first
  /// table size. Throws std::invalid_argument on any malformed table.
  FlowSizeDist(std::string name, std::vector<CdfPoint> cdf,
               Bytes min_size = 100);

  Bytes sample(Rng& rng) const { return sample_at(rng.uniform()); }

  /// Deterministic inverse CDF: the flow size at cumulative probability
  /// `u` (clamped into [0, 1]). Log-linear interpolation between table
  /// points; u = 1 returns exactly max_size() (inclusive upper bound).
  Bytes sample_at(double u) const;

  double mean() const { return mean_; }
  const std::string& name() const { return name_; }
  Bytes min_size() const { return min_size_; }
  Bytes max_size() const { return sizes_.back(); }

  /// Deciles of the distribution (synthesized through sample_at for
  /// general CDF tables).
  const std::vector<Bytes>& deciles() const { return deciles_; }

  /// The CDF table this distribution samples from.
  const std::vector<CdfPoint>& cdf() const { return cdf_; }

  // The two paper workloads (deciles from Fig. 7b / 7c tick marks).
  static FlowSizeDist web_search();
  static FlowSizeDist hadoop();

  /// Looks up a built-in distribution ("web_search", "hadoop") by name;
  /// returns false and leaves `out` untouched for unknown names.
  static bool named(const std::string& name, FlowSizeDist& out);

 private:
  void validate_and_finish();

  std::string name_;
  std::vector<CdfPoint> cdf_;
  std::vector<Bytes> sizes_;    // cdf_ sizes, for cheap access
  std::vector<double> probs_;   // cdf_ cumulative probabilities
  std::vector<Bytes> deciles_;
  Bytes min_size_;
  double mean_ = 0.0;
};

}  // namespace pint
