// Flow-size distributions (paper Section 6.1).
//
// The paper draws flow sizes from the web-search workload of DCTCP
// (Alizadeh et al., reference [3]) and the Hadoop workload measured at
// Facebook (Roy et al., reference [62]). We encode each distribution by its
// deciles — exactly the tick marks of Figs. 7b/7c, which the paper chose
// "such that there are 10% of the flows between consecutive tick marks" —
// and sample by log-linear interpolation between deciles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace pint {

class FlowSizeDist {
 public:
  // `deciles[i]` = flow size at CDF (i+1)/10; 10 entries, ascending.
  FlowSizeDist(std::string name, std::vector<Bytes> deciles,
               Bytes min_size = 100);

  Bytes sample(Rng& rng) const;

  double mean() const { return mean_; }
  const std::string& name() const { return name_; }
  const std::vector<Bytes>& deciles() const { return deciles_; }

  // The two paper workloads (deciles from Fig. 7b / 7c tick marks).
  static FlowSizeDist web_search();
  static FlowSizeDist hadoop();

 private:
  std::string name_;
  std::vector<Bytes> deciles_;
  Bytes min_size_;
  double mean_;
};

}  // namespace pint
