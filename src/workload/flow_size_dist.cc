#include "workload/flow_size_dist.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pint {

FlowSizeDist::FlowSizeDist(std::string name, std::vector<Bytes> deciles,
                           Bytes min_size)
    : name_(std::move(name)), min_size_(min_size) {
  if (deciles.size() != 10) throw std::invalid_argument("10 deciles");
  cdf_.reserve(deciles.size());
  for (std::size_t i = 0; i < deciles.size(); ++i) {
    cdf_.push_back(CdfPoint{deciles[i], (static_cast<double>(i) + 1.0) / 10.0});
  }
  validate_and_finish();
}

FlowSizeDist::FlowSizeDist(std::string name, std::vector<CdfPoint> cdf,
                           Bytes min_size)
    : name_(std::move(name)), cdf_(std::move(cdf)), min_size_(min_size) {
  validate_and_finish();
}

void FlowSizeDist::validate_and_finish() {
  if (cdf_.empty()) throw std::invalid_argument("empty CDF table");
  if (min_size_ <= 0) throw std::invalid_argument("min_size must be positive");
  for (std::size_t i = 0; i < cdf_.size(); ++i) {
    if (cdf_[i].size <= 0) {
      throw std::invalid_argument("CDF sizes must be positive");
    }
    if (!(cdf_[i].cum_prob > 0.0) || cdf_[i].cum_prob > 1.0) {
      throw std::invalid_argument("CDF probabilities must lie in (0, 1]");
    }
    if (i > 0) {
      if (cdf_[i].size < cdf_[i - 1].size) {
        throw std::invalid_argument("CDF sizes must be non-decreasing");
      }
      if (cdf_[i].cum_prob <= cdf_[i - 1].cum_prob) {
        throw std::invalid_argument(
            "CDF probabilities must be strictly increasing");
      }
    }
  }
  if (std::abs(cdf_.back().cum_prob - 1.0) > 1e-9) {
    throw std::invalid_argument("CDF must end at cumulative probability 1");
  }
  cdf_.back().cum_prob = 1.0;
  if (min_size_ > cdf_.front().size) {
    throw std::invalid_argument("min_size exceeds the first CDF size");
  }

  sizes_.reserve(cdf_.size());
  probs_.reserve(cdf_.size());
  for (const CdfPoint& p : cdf_) {
    sizes_.push_back(p.size);
    probs_.push_back(p.cum_prob);
  }

  // Mean via stratified probes of the inverse CDF (numeric integration).
  double sum = 0.0;
  const int steps = 10000;
  for (int i = 0; i < steps; ++i) {
    sum += static_cast<double>(sample_at((i + 0.5) / steps));
  }
  mean_ = sum / steps;

  deciles_.resize(10);
  for (int d = 1; d <= 10; ++d) deciles_[d - 1] = sample_at(d / 10.0);
}

Bytes FlowSizeDist::sample_at(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  // Inclusive tail: at (or beyond) the final probability, return the
  // maximum size exactly — interpolation rounding must not shave it.
  if (u >= probs_.back()) return sizes_.back();
  const auto it = std::lower_bound(probs_.begin(), probs_.end(), u);
  const auto idx = static_cast<std::size_t>(it - probs_.begin());
  const double lo_p = idx == 0 ? 0.0 : probs_[idx - 1];
  const double lo_s =
      static_cast<double>(idx == 0 ? min_size_ : sizes_[idx - 1]);
  const double hi_s = static_cast<double>(sizes_[idx]);
  const double frac = (u - lo_p) / (probs_[idx] - lo_p);
  const double size = lo_s == hi_s ? lo_s : lo_s * std::pow(hi_s / lo_s, frac);
  return std::clamp(static_cast<Bytes>(size), min_size_, sizes_.back());
}

FlowSizeDist FlowSizeDist::web_search() {
  // Fig. 7b tick marks = deciles of the DCTCP web-search distribution.
  return FlowSizeDist("web_search",
                      std::vector<Bytes>{7'000, 20'000, 30'000, 50'000, 73'000,
                                         197'000, 989'000, 2'000'000,
                                         5'000'000, 30'000'000});
}

FlowSizeDist FlowSizeDist::hadoop() {
  // Fig. 7c tick marks = deciles of the Facebook Hadoop distribution.
  return FlowSizeDist("hadoop",
                      std::vector<Bytes>{324, 399, 500, 599, 699, 999, 7'000,
                                         46'000, 120'000, 10'000'000},
                      100);
}

bool FlowSizeDist::named(const std::string& name, FlowSizeDist& out) {
  if (name == "web_search") {
    out = web_search();
    return true;
  }
  if (name == "hadoop") {
    out = hadoop();
    return true;
  }
  return false;
}

}  // namespace pint
