#include "workload/flow_size_dist.h"

#include <cmath>
#include <stdexcept>

namespace pint {

FlowSizeDist::FlowSizeDist(std::string name, std::vector<Bytes> deciles,
                           Bytes min_size)
    : name_(std::move(name)), deciles_(std::move(deciles)),
      min_size_(min_size) {
  if (deciles_.size() != 10) throw std::invalid_argument("10 deciles");
  for (std::size_t i = 1; i < deciles_.size(); ++i) {
    if (deciles_[i] < deciles_[i - 1])
      throw std::invalid_argument("deciles must be ascending");
  }
  // Mean via the same log-linear interpolation used by sample(): numeric
  // integration over the CDF.
  double sum = 0.0;
  const int steps = 10000;
  Rng probe(12345);
  for (int i = 0; i < steps; ++i) {
    // Stratified probe of the inverse CDF.
    const double u = (i + 0.5) / steps;
    Rng local(probe.next());
    (void)local;
    // Reuse sampling logic deterministically.
    const double pos = u * 10.0;
    auto idx = static_cast<std::size_t>(pos);
    double lo, hi;
    if (idx == 0) {
      lo = static_cast<double>(min_size_);
      hi = static_cast<double>(deciles_[0]);
    } else if (idx >= 9) {
      lo = static_cast<double>(deciles_[8]);
      hi = static_cast<double>(deciles_[9]);
      idx = 9;
    } else {
      lo = static_cast<double>(deciles_[idx - 1]);
      hi = static_cast<double>(deciles_[idx]);
    }
    const double frac = pos - static_cast<double>(idx);
    sum += lo * std::pow(hi / lo, frac);
  }
  mean_ = sum / steps;
}

Bytes FlowSizeDist::sample(Rng& rng) const {
  const double u = rng.uniform();
  const double pos = u * 10.0;
  auto idx = static_cast<std::size_t>(pos);
  double lo, hi;
  if (idx == 0) {
    lo = static_cast<double>(min_size_);
    hi = static_cast<double>(deciles_[0]);
  } else if (idx >= 9) {
    lo = static_cast<double>(deciles_[8]);
    hi = static_cast<double>(deciles_[9]);
    idx = 9;
  } else {
    lo = static_cast<double>(deciles_[idx - 1]);
    hi = static_cast<double>(deciles_[idx]);
  }
  const double frac = pos - static_cast<double>(idx);
  const double size = lo * std::pow(hi / lo, frac);
  return std::max<Bytes>(min_size_, static_cast<Bytes>(size));
}

FlowSizeDist FlowSizeDist::web_search() {
  // Fig. 7b tick marks = deciles of the DCTCP web-search distribution.
  return FlowSizeDist("web_search",
                      {7'000, 20'000, 30'000, 50'000, 73'000, 197'000,
                       989'000, 2'000'000, 5'000'000, 30'000'000});
}

FlowSizeDist FlowSizeDist::hadoop() {
  // Fig. 7c tick marks = deciles of the Facebook Hadoop distribution.
  return FlowSizeDist("hadoop", {324, 399, 500, 599, 699, 999, 7'000, 46'000,
                                 120'000, 10'000'000});
}

}  // namespace pint
