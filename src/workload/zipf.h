// Zipf-distributed sampling over a finite universe.
//
// Real traffic is heavy-tailed: a few elephant flows carry most packets
// while millions of mice appear once or twice (the paper's Section 6.1
// workloads show the same shape through their flow-size deciles). The
// memory-bounding experiments need per-packet flow popularity with that
// skew over very large universes, so this sampler implements
// rejection-inversion for bounded Zipf variables (Hörmann & Derflinger,
// "Rejection-inversion to generate variates from monotone discrete
// distributions", TOMACS 1996): O(1) expected time per sample, no
// per-element tables, exact distribution P(k) ~ k^-s for k in [1, n].
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "common/rng.h"

namespace pint {

class ZipfDist {
 public:
  /// P(k) proportional to k^-s over k in [1, n]. `s` > 0 (s ~ 1 is the
  /// classic heavy tail; larger s concentrates mass on the top ranks).
  ZipfDist(std::uint64_t n, double s) : n_(n), s_(s) {
    if (n == 0) throw std::invalid_argument("n > 0");
    if (!(s > 0.0)) throw std::invalid_argument("s > 0");
    h_x1_ = h_integral(1.5) - 1.0;
    h_n_ = h_integral(static_cast<double>(n) + 0.5);
    threshold_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
  }

  /// Rank in [1, n]; rank 1 is the most popular.
  std::uint64_t sample(Rng& rng) const {
    for (;;) {
      const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
      const double x = h_integral_inverse(u);
      std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
      if (k < 1) {
        k = 1;
      } else if (k > n_) {
        k = n_;
      }
      const double kd = static_cast<double>(k);
      if (kd - x <= threshold_ || u >= h_integral(kd + 0.5) - h(kd)) {
        return k;
      }
    }
  }

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  // H(x) = integral of x^-s, in the numerically stable form
  // helper2((1-s) ln x) * ln x, which also covers s == 1 smoothly.
  double h_integral(double x) const {
    const double log_x = std::log(x);
    return helper2((1.0 - s_) * log_x) * log_x;
  }

  double h(double x) const { return std::exp(-s_ * std::log(x)); }

  double h_integral_inverse(double x) const {
    double t = x * (1.0 - s_);
    if (t < -1.0) t = -1.0;  // round-off guard at the left boundary
    return std::exp(helper1(t) * x);
  }

  // log1p(x)/x and expm1(x)/x with series fallbacks near zero.
  static double helper1(double x) {
    return std::abs(x) > 1e-8 ? std::log1p(x) / x
                              : 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
  }

  static double helper2(double x) {
    return std::abs(x) > 1e-8 ? std::expm1(x) / x
                              : 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) *
                                                           (1.0 + 0.25 * x));
  }

  std::uint64_t n_;
  double s_;
  double h_x1_ = 0.0;       // H(1.5) - 1
  double h_n_ = 0.0;        // H(n + 0.5)
  double threshold_ = 0.0;  // immediate-accept band
};

}  // namespace pint
