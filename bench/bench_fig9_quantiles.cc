// Fig. 9 | Latency-quantile estimation error:
//   row 1: relative error vs number of packets sampled (sketch fixed),
//   row 2: relative error vs sketch size in bytes (sample fixed at 500),
// for bit budgets b = 4 and b = 8, with (PINT_S) and without sketches,
// for the tail (p99) and median quantiles.
//
// The paper draws hop latencies from its NS3 congestion-control traces; we
// synthesize heavy-tailed per-hop latency streams with the same qualitative
// shape (exponential body + bursty tail), which preserves the error-vs-
// budget behaviour under study (see DESIGN.md substitutions).
#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "pint/dynamic_aggregation.h"

using namespace pint;

namespace {

double hop_latency(Rng& rng, HopIndex hop) {
  double v = 1000.0 * hop + rng.exponential(1.0 / (300.0 * hop));
  if (rng.bernoulli(0.02)) v *= 4.0;  // microburst tail
  return v;
}

struct ErrorPair {
  double median = 0.0;
  double tail = 0.0;
};

// Mean relative error over hops and repetitions for a configuration.
ErrorPair measure(unsigned bits, std::size_t sketch_bytes, int sample_packets,
                  std::uint64_t seed) {
  const unsigned k = 5;
  ErrorPair err;
  const int reps = 30;
  for (int rep = 0; rep < reps; ++rep) {
    DynamicAggregationConfig cfg;
    cfg.bits = bits;
    cfg.max_value = 1e7;
    DynamicAggregationQuery query(cfg, seed + rep * 7);
    // Sketched identifiers are the b-bit compressed codes (paper Fig. 9).
    FlowLatencyRecorder rec(k, sketch_bytes, seed + rep * 13,
                            (bits + 7) / 8);
    Rng rng(seed + rep * 17);
    std::vector<std::vector<double>> truth(k);
    for (PacketId p = 1; p <= static_cast<PacketId>(sample_packets); ++p) {
      Digest d = 0;
      for (HopIndex i = 1; i <= k; ++i) {
        const double v = hop_latency(rng, i);
        truth[i - 1].push_back(v);
        d = query.encode_step(p, i, d, v);
      }
      rec.add(query.decode(p, d, k));
    }
    for (HopIndex hop = 1; hop <= k; ++hop) {
      const double t50 = percentile(truth[hop - 1], 0.5);
      const double t99 = percentile(truth[hop - 1], 0.99);
      err.median += relative_error(rec.quantile(hop, 0.5).value_or(0), t50);
      err.tail += relative_error(rec.quantile(hop, 0.99).value_or(0), t99);
    }
  }
  err.median *= 100.0 / (reps * k);
  err.tail *= 100.0 / (reps * k);
  return err;
}

}  // namespace

int main() {
  bench::header("Fig. 9 (top row) | relative error [%] vs sample size");
  bench::row("%-8s | %-18s %-18s | %-18s %-18s", "packets", "b=8 tail",
             "b=4 tail", "b=8 median", "b=4 median");
  for (int packets : {100, 200, 400, 600, 800, 1000}) {
    const ErrorPair b8 = measure(8, 0, packets, 400);
    const ErrorPair b4 = measure(4, 0, packets, 500);
    bench::row("%-8d | %-18.1f %-18.1f | %-18.1f %-18.1f", packets, b8.tail,
               b4.tail, b8.median, b4.median);
  }

  bench::header(
      "Fig. 9 (bottom row) | relative error [%] vs sketch size (500 pkts)");
  bench::row("%-12s | %-12s %-12s %-12s %-12s", "sketch [B]", "PINTS b=8 t",
             "PINTS b=4 t", "PINTS b=8 m", "PINTS b=4 m");
  for (std::size_t bytes : {100u, 150u, 200u, 250u, 300u}) {
    const ErrorPair b8 = measure(8, bytes, 500, 600);
    const ErrorPair b4 = measure(4, bytes, 500, 700);
    bench::row("%-12zu | %-12.1f %-12.1f %-12.1f %-12.1f", bytes, b8.tail,
               b4.tail, b8.median, b4.median);
  }
  bench::row(
      "\nexpected shape (paper): error stabilizes with enough packets and is\n"
      "dominated by the compression error (b=4 floor >> b=8 floor); adding\n"
      "a small sketch degrades accuracy only slightly.");
  return 0;
}
