// Figs. 1 & 2 | Cost of per-packet telemetry overhead on application
// performance: normalized average FCT (Fig. 1) and normalized goodput of
// long flows (Fig. 2) as the fixed per-packet overhead sweeps 28..108 bytes
// (i.e. 1..5 INT values on a 5-hop path), at moderate (30%) and high (70%)
// network load. TCP Reno + ECMP on a fat tree with web-search flow sizes,
// exactly the Section 2 methodology (scaled down; see DESIGN.md).
#include <vector>

#include "bench/bench_util.h"
#include "bench/sim_harness.h"

using namespace pint;
using namespace pint::bench;

namespace {

bool g_smoke = false;

HarnessResult run_overhead(double load, Bytes overhead, std::uint64_t seed) {
  HarnessConfig hc;
  hc.load = load;
  hc.traffic_duration = (g_smoke ? 1 : 15) * kMilli;
  hc.drain_horizon = 500 * kMilli;
  hc.fat_tree_k = 4;
  hc.seed = seed;
  hc.sim.transport = TransportKind::kTcpReno;
  hc.sim.telemetry = TelemetryMode::kNone;
  hc.sim.extra_overhead_bytes = overhead;
  hc.sim.host_bandwidth_bps = 10e9;
  hc.sim.fabric_bandwidth_bps = 40e9;
  hc.sim.mtu_payload = 1000;
  return run_harness(hc, FlowSizeDist::web_search());
}

}  // namespace

int main(int argc, char** argv) {
  g_smoke = bench::smoke_mode(argc, argv);
  const Bytes kLongFlow = 5'000'000;
  const std::vector<std::uint64_t> seeds =
      g_smoke ? std::vector<std::uint64_t>{42}
              : std::vector<std::uint64_t>{42, 43, 44};
  bench::header("Figs. 1 & 2 | normalized FCT / long-flow goodput vs overhead");
  if (g_smoke) bench::note_smoke();
  bench::row("%-10s %-6s | %-12s %-14s | %-12s %-16s", "overhead", "load",
             "avg FCT", "FCT (norm)", "goodput", "goodput (norm)");
  for (double load : {0.3, 0.7}) {
    auto averaged = [&](Bytes overhead) {
      double fct = 0.0, gp = 0.0;
      for (std::uint64_t s : seeds) {
        const HarnessResult r = run_overhead(load, overhead, s);
        fct += r.mean_fct();
        gp += r.mean_goodput(kLongFlow);
      }
      return std::pair{fct / seeds.size(), gp / seeds.size()};
    };
    const auto [base_fct, base_goodput] = averaged(0);
    for (Bytes overhead : {0, 28, 48, 68, 88, 108}) {
      const auto [fct, gp] =
          overhead == 0 ? std::pair{base_fct, base_goodput}
                        : averaged(overhead);
      bench::row("%-10lld %-6.0f%% | %-12.3g %-14.3f | %-12.3g %-16.3f",
                 static_cast<long long>(overhead), load * 100, fct,
                 base_fct > 0 ? fct / base_fct : 0.0, gp,
                 base_goodput > 0 ? gp / base_goodput : 0.0);
    }
  }
  bench::row(
      "\nexpected shape (paper): FCT inflates with overhead and the effect\n"
      "is much stronger at 70%% load (up to ~1.25x at 108B); long-flow\n"
      "goodput degrades correspondingly (down to ~0.8x).");
  return 0;
}
