// Appendix A.4 | Loop-detection false-positive rates and detection latency
// for the header configurations the paper discusses:
//   b=16 T=0 (plain match), b=15 T=1, b=14 T=3 — all 16 total bits.
#include "bench/bench_util.h"
#include "pint/loop_detection.h"

using namespace pint;

int main() {
  bench::header("Appendix A.4 | loop detection: FP rate vs detection latency");
  bench::row("%-12s %-6s | %-16s %-12s %-14s", "config", "bits", "FP/packets",
             "detect rate", "hops to catch");

  const int packets = 200000;
  const unsigned path_len = 32;
  const unsigned loop_len = 6;

  struct Cfg {
    const char* name;
    LoopDetectionConfig cfg;
  } configs[] = {
      {"b=16, T=0", {16, 0}},
      {"b=15, T=1", {15, 1}},
      {"b=14, T=3", {14, 3}},
      {"b=12, T=3", {12, 3}},  // extra point: too-small hash starts to FP
  };
  for (const auto& [name, c] : configs) {
    LoopDetector det(c, 4242);
    int fps = 0;
    for (PacketId p = 1; p <= packets; ++p) {
      LoopDigest st;
      for (HopIndex i = 1; i <= path_len; ++i) {
        if (det.process(p, i, 7000 + i, st)) {
          ++fps;
          break;
        }
      }
    }
    int detected = 0;
    double hops = 0.0;
    const int loop_packets = 5000;
    for (PacketId p = 1; p <= loop_packets; ++p) {
      LoopDigest st;
      HopIndex i = 1;
      bool caught = false;
      for (int cyc = 0; cyc < 128 && !caught; ++cyc) {
        for (SwitchId s = 1; s <= loop_len && !caught; ++s) {
          caught = det.process(9000000 + p, i++, s, st);
        }
      }
      if (caught) {
        ++detected;
        hops += static_cast<double>(i);
      }
    }
    bench::row("%-12s %-6u | %8d/%-8d %11.1f%% %14.1f", name,
               det.total_bits(), fps, packets,
               100.0 * detected / loop_packets,
               detected ? hops / detected : -1.0);
  }
  bench::row(
      "\nexpected (paper): b=15/T=1 cuts the FP rate to ~5e-7 and b=14/T=3\n"
      "to ~5e-13 (no alarms at any realistic rate), at the cost of waiting\n"
      "T extra loop cycles before reporting.");
  return 0;
}
