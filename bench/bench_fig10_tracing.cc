// Fig. 10 | Packets required to trace a flow's path (average and 99th
// percentile) vs path length, on the three evaluation topologies:
//   (a,d) Kentucky Datalink stand-in (753 switches, D = 59)
//   (b,e) US Carrier stand-in       (157 switches, D = 36)
//   (c,f) Fat tree K = 8            (switch diameter 5)
// Algorithms: PINT 2x(b=8), PINT b=4, PINT b=1 (multi-layer scheme, d = 10
// on ISP topologies / d = 5 on the fat tree, as in the paper), and the IP
// traceback baselines PPM and AMS2 (m = 5, 6), both with the reservoir-
// sampling improvement. PPM/AMS use 16-bit marking fields.
#include <numeric>
#include <vector>

#include "baselines/ams.h"
#include "baselines/ppm.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "pint/static_aggregation.h"
#include "topology/fat_tree.h"
#include "topology/isp.h"

using namespace pint;

namespace {

struct Stats {
  double avg = 0.0;
  double p99 = 0.0;
};

Stats summarize(std::vector<std::uint64_t> needed) {
  Stats s;
  s.avg = mean(needed);
  s.p99 = static_cast<double>(percentile(needed, 0.99));
  return s;
}

Stats run_pint(const std::vector<SwitchId>& path,
               const std::vector<std::uint64_t>& universe, unsigned bits,
               unsigned instances, unsigned d, int runs, std::uint64_t seed) {
  std::vector<std::uint64_t> needed;
  const auto k = static_cast<unsigned>(path.size());
  for (int r = 0; r < runs; ++r) {
    PathTracingConfig cfg;
    cfg.bits = bits;
    cfg.instances = instances;
    cfg.d = d;
    PathTracingQuery query(cfg, seed + r * 131);
    auto dec = query.make_decoder(k, universe);
    PacketId p = 1;
    while (!dec.complete()) {
      std::vector<Digest> lanes(instances, 0);
      for (HopIndex i = 1; i <= k; ++i) query.encode(p, i, path[i - 1], lanes);
      dec.add_packet(p, lanes);
      ++p;
    }
    needed.push_back(p - 1);
  }
  return summarize(std::move(needed));
}

Stats run_ppm(const std::vector<SwitchId>& path, int runs,
              std::uint64_t seed) {
  std::vector<std::uint64_t> needed;
  const auto k = static_cast<unsigned>(path.size());
  for (int r = 0; r < runs; ++r) {
    PpmTraceback ppm(seed + r * 17);
    PpmDecoder dec(k);
    PacketId p = 1;
    while (!dec.complete()) {
      PpmMark mark;
      for (HopIndex i = 1; i <= k; ++i) ppm.mark(p, i, path[i - 1], mark);
      dec.add_mark(mark);
      ++p;
    }
    needed.push_back(p - 1);
  }
  return summarize(std::move(needed));
}

Stats run_ams(const std::vector<SwitchId>& path,
              const std::vector<SwitchId>& universe, unsigned m, int runs,
              std::uint64_t seed) {
  std::vector<std::uint64_t> needed;
  const auto k = static_cast<unsigned>(path.size());
  for (int r = 0; r < runs; ++r) {
    AmsTraceback ams(m, seed + r * 23);
    AmsDecoder dec(k, ams, universe);
    PacketId p = 1;
    // Collect all m hash constraints per hop (the dominant cost), then keep
    // going until the candidate sets are unambiguous.
    while (!dec.all_constraints()) {
      AmsMark mark;
      for (HopIndex i = 1; i <= k; ++i) ams.mark(p, i, path[i - 1], mark);
      dec.add_mark(mark);
      ++p;
    }
    while (!dec.complete()) {
      for (int extra = 0; extra < 50; ++extra, ++p) {
        AmsMark mark;
        for (HopIndex i = 1; i <= k; ++i) ams.mark(p, i, path[i - 1], mark);
        dec.add_mark(mark);
      }
    }
    needed.push_back(p - 1);
  }
  return summarize(std::move(needed));
}

void run_topology(const char* title, const std::vector<SwitchId>& full_path,
                  const std::vector<std::uint64_t>& universe,
                  const std::vector<unsigned>& lengths, unsigned d, int runs) {
  std::vector<SwitchId> uni32(universe.begin(), universe.end());
  bench::header(std::string("Fig. 10 | ") + title);
  bench::row("%-6s | %-9s %-9s %-9s %-9s %-9s %-9s | stat", "hops",
             "PINT 2x8", "PINT b=4", "PINT b=1", "AMS m=5", "AMS m=6", "PPM");
  for (unsigned hops : lengths) {
    const std::vector<SwitchId> path(full_path.begin(),
                                     full_path.begin() + hops);
    const Stats p88 = run_pint(path, universe, 8, 2, d, runs, 90100 + hops);
    const Stats p4 = run_pint(path, universe, 4, 1, d, runs, 90200 + hops);
    const Stats p1 = run_pint(path, universe, 1, 1, d, runs, 90300 + hops);
    const Stats a5 = run_ams(path, uni32, 5, runs, 90400 + hops);
    const Stats a6 = run_ams(path, uni32, 6, runs, 90500 + hops);
    const Stats pp = run_ppm(path, runs, 90600 + hops);
    bench::row("%-6u | %-9.0f %-9.0f %-9.0f %-9.0f %-9.0f %-9.0f | avg", hops,
               p88.avg, p4.avg, p1.avg, a5.avg, a6.avg, pp.avg);
    bench::row("%-6s | %-9.0f %-9.0f %-9.0f %-9.0f %-9.0f %-9.0f | p99", "",
               p88.p99, p4.p99, p1.p99, a5.p99, a6.p99, pp.p99);
  }
}

}  // namespace

int main() {
  const int runs = 60;

  {
    const IspTopology isp = make_kentucky_datalink();
    std::vector<std::uint64_t> universe(isp.graph.num_nodes());
    std::iota(universe.begin(), universe.end(), 0);
    std::vector<SwitchId> backbone(isp.backbone.begin(), isp.backbone.end());
    run_topology("(a,d) Kentucky Datalink (753 switches, D=59)", backbone,
                 universe, {6, 12, 18, 24, 30, 36, 42, 48, 54}, /*d=*/10,
                 runs);
  }
  {
    const IspTopology isp = make_us_carrier();
    std::vector<std::uint64_t> universe(isp.graph.num_nodes());
    std::iota(universe.begin(), universe.end(), 0);
    std::vector<SwitchId> backbone(isp.backbone.begin(), isp.backbone.end());
    run_topology("(b,e) US Carrier (157 switches, D=36)", backbone, universe,
                 {4, 8, 12, 16, 20, 24, 28, 32, 36}, /*d=*/10, runs);
  }
  {
    // Fat tree: switch-level paths of 2..5 hops; universe = all switches.
    const FatTree ft = make_fat_tree(8, /*with_hosts=*/false);
    std::vector<std::uint64_t> universe(ft.graph.num_nodes());
    std::iota(universe.begin(), universe.end(), 0);
    // A canonical 5-switch path: edge -> agg -> core -> agg -> edge.
    const std::vector<SwitchId> path5{
        static_cast<SwitchId>(ft.nodes.edges[0]),
        static_cast<SwitchId>(ft.nodes.aggs[0]),
        static_cast<SwitchId>(ft.nodes.cores[0]),
        static_cast<SwitchId>(ft.nodes.aggs[4]),
        static_cast<SwitchId>(ft.nodes.edges[4])};
    run_topology("(c,f) Fat tree K=8 (D=5)", path5, universe, {2, 3, 4, 5},
                 /*d=*/5, runs);
  }
  bench::row(
      "\nexpected shape (paper): PINT needs 25-36x fewer packets than\n"
      "PPM/AMS at D=59 with 2x(b=8), and 7-10x fewer even with b=1;\n"
      "growth is near-linear in hops for PINT, superlinear for baselines.");
  return 0;
}
