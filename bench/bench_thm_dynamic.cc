// Theorems 1 & 2 | sample-complexity validation for dynamic per-flow
// aggregation: after O(k / eps^2) packets, every hop's phi-quantile is
// (phi +- eps)-accurate in rank (Thm 1) and every theta-frequent value is
// reported with no (theta - eps)-infrequent false positives (Thm 2).
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "pint/dynamic_aggregation.h"

using namespace pint;

int main() {
  const unsigned k = 8;

  bench::header("Theorem 1 | rank error of the median vs packets ~ k/eps^2");
  bench::row("%-8s %-14s %-16s %-16s", "eps", "packets", "max rank err",
             "within eps?");
  for (double eps : {0.2, 0.1, 0.05}) {
    const int packets = static_cast<int>(4.0 * k / (eps * eps));
    double max_err = 0.0;
    const int reps = 10;
    for (int rep = 0; rep < reps; ++rep) {
      DynamicAggregationConfig cfg;
      cfg.bits = 16;  // wide enough that compression error is negligible
      cfg.max_value = 1e6;
      DynamicAggregationQuery query(cfg, 100 + rep);
      FlowLatencyRecorder rec(k);
      Rng rng(200 + rep);
      std::vector<std::vector<double>> truth(k);
      for (PacketId p = 1; p <= static_cast<PacketId>(packets); ++p) {
        Digest d = 0;
        for (HopIndex i = 1; i <= k; ++i) {
          const double v = 1.0 + rng.exponential(1.0 / (10.0 * i));
          truth[i - 1].push_back(v);
          d = query.encode_step(p, i, d, v);
        }
        rec.add(query.decode(p, d, k));
      }
      for (HopIndex hop = 1; hop <= k; ++hop) {
        auto& t = truth[hop - 1];
        std::sort(t.begin(), t.end());
        const double est = *rec.quantile(hop, 0.5);
        const double rank =
            static_cast<double>(std::lower_bound(t.begin(), t.end(), est) -
                                t.begin()) /
            static_cast<double>(t.size());
        max_err = std::max(max_err, std::abs(rank - 0.5));
      }
    }
    bench::row("%-8.2f %-14d %-16.3f %-16s", eps, packets, max_err,
               max_err <= eps ? "yes" : "NO");
  }

  bench::header("Theorem 2 | theta-frequent values from subsampled streams");
  bench::row("%-8s %-8s %-14s %-12s %-12s", "theta", "eps", "packets",
             "recall", "false pos");
  for (double eps : {0.1, 0.05}) {
    const double theta = 0.3;
    const int packets = static_cast<int>(4.0 * k / (eps * eps));
    int found = 0, total_true = 0, false_pos = 0;
    const int reps = 10;
    for (int rep = 0; rep < reps; ++rep) {
      DynamicAggregationConfig cfg;
      cfg.bits = 16;
      cfg.max_value = 1e6;
      DynamicAggregationQuery query(cfg, 300 + rep);
      FlowLatencyRecorder rec(k);
      Rng rng(400 + rep);
      // Hop 3 emits value 500 with probability 0.4 (> theta); everything
      // else is spread noise (each value << theta - eps frequent).
      for (PacketId p = 1; p <= static_cast<PacketId>(packets); ++p) {
        Digest d = 0;
        for (HopIndex i = 1; i <= k; ++i) {
          const double v = (i == 3 && rng.uniform() < 0.4)
                               ? 500.0
                               : 1000.0 + rng.uniform_int(100000);
          d = query.encode_step(p, i, d, v);
        }
        rec.add(query.decode(p, d, k));
      }
      ++total_true;
      const auto freq = rec.frequent_values(3, theta - eps);
      for (std::uint64_t v : freq) {
        if (v >= 495 && v <= 505) {
          ++found;
        } else {
          ++false_pos;
        }
      }
    }
    bench::row("%-8.2f %-8.2f %-14d %8d/%-5d %-12d", theta, eps, packets,
               found, total_true, false_pos);
  }
  bench::row("\nexpected: recall = reps/reps with zero (or near-zero) false\n"
             "positives, at packet counts scaling with 1/eps^2.");
  return 0;
}
