// Fan-in transport throughput: N sharded sinks shipping framed report
// streams to one collector over both ByteStream implementations (SPSC
// ring vs unix socketpair), plus the cost of backpressure policies. This
// is the sink -> Inference-Module leg of the multi-sink scale-out (this
// repo's extension; the paper's sinks are monolithic).
//
// Before timing, the harness verifies the collector's merged record
// stream is byte-identical to a monolithic sink's on the same traffic
// (lossless config), and that a deliberately starved drop-newest config
// reports exact drop counts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "pint/framework.h"
#include "pint/report_codec.h"
#include "sim/fanin.h"

namespace pint {
namespace {

constexpr unsigned kHops = 5;
std::size_t kFlows = 8192;  // shrunk in smoke mode
std::size_t kPacketsPerFlow = 16;

PintFramework::Builder mix_builder() {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e8;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 64; ++s) universe.push_back(s);
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0xFA417)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
          cc_tuning));
  return builder;
}

std::vector<Packet> make_traffic() {
  const auto network = mix_builder().build_or_throw();
  std::vector<Packet> packets;
  packets.reserve(kFlows * kPacketsPerFlow);
  PacketId next_id = 1;
  for (std::size_t j = 0; j < kPacketsPerFlow; ++j) {
    for (std::size_t f = 0; f < kFlows; ++f) {
      Packet p;
      p.id = next_id++;
      p.tuple.src_ip = 0x0A000000u + static_cast<std::uint32_t>(f);
      p.tuple.dst_ip = 0x0B000000u + static_cast<std::uint32_t>(f % 2048);
      p.tuple.src_port = static_cast<std::uint16_t>(f);
      p.tuple.dst_port = 443;
      packets.push_back(std::move(p));
    }
  }
  for (Packet& p : packets) {
    const std::size_t f = (p.id - 1) % kFlows;
    for (HopIndex i = 1; i <= kHops; ++i) {
      SwitchView view(static_cast<SwitchId>((f + i) % 64 + 1));
      view.set(metric::kHopLatencyNs, 500.0 * i + static_cast<double>(f % 97));
      view.set(metric::kLinkUtilization, 0.05 * i);
      network->at_switch(p, i, view);
    }
  }
  return packets;
}

struct RecordingObserver : SinkObserver {
  struct Rec {
    SinkContext ctx;
    std::string query;
    bool path_event = false;
    Observation obs{};
    std::vector<SwitchId> path;
  };
  std::vector<Rec> records;

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    records.push_back({ctx, std::string(query), false, obs, {}});
  }
  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    records.push_back({ctx, std::string(query), true, {}, path});
  }
};

std::vector<std::uint8_t> canonical_bytes(
    std::vector<RecordingObserver::Rec> records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const auto& a, const auto& b) {
                     return a.ctx.packet_id < b.ctx.packet_id;
                   });
  ReportEncoder enc;
  for (const auto& rec : records) {
    if (rec.path_event) {
      enc.add_path(rec.ctx, rec.query, rec.path);
    } else {
      enc.add(rec.ctx, rec.query, rec.obs);
    }
  }
  return enc.finish();
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunResult {
  double seconds = 0.0;
  std::uint64_t bytes_shipped = 0;
  TransportCounters transport;
};

RunResult run_pipeline(const PintFramework::Builder& builder,
                       std::span<const Packet> packets, FanInConfig cfg,
                       unsigned epochs) {
  FanInPipeline pipeline(builder, cfg);
  const std::size_t per_epoch = packets.size() / epochs;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < packets.size(); ++i) {
    pipeline.deliver(packets[i], kHops);
    if (per_epoch > 0 && (i + 1) % per_epoch == 0) pipeline.ship_epoch();
  }
  pipeline.shutdown();
  RunResult r;
  r.seconds = seconds_since(t0);
  r.bytes_shipped = pipeline.bytes_shipped();
  r.transport = pipeline.transport_counters();
  return r;
}

}  // namespace
}  // namespace pint

int main(int argc, char** argv) {
  using namespace pint;
  const bool smoke = bench::smoke_mode(argc, argv);
  if (smoke) kFlows = 512;
  bench::header(
      "Fan-in transport — framed sink->collector streams\n"
      "(three-query mix; epoch framing + CRC over SPSC ring, unix\n"
      "socketpair, and CollectorDaemon sockets (unix-domain + localhost\n"
      "TCP); collector output verified byte-identical to a monolithic\n"
      "sink before timing)");
  if (smoke) bench::note_smoke();

  const auto builder = mix_builder();
  const std::vector<Packet> packets = make_traffic();
  const double mpkts = static_cast<double>(packets.size()) / 1e6;
  std::printf("traffic: %zu flows x %zu packets = %zu packets, k=%u\n\n",
              kFlows, kPacketsPerFlow, packets.size(), kHops);

  // Correctness gate 1: lossless fan-in == monolithic sink, byte for byte.
  {
    const auto mono = builder.build_or_throw();
    RecordingObserver mono_records;
    mono->add_observer(&mono_records);
    mono->at_sink(std::span<const Packet>(packets), kHops);

    FanInConfig cfg;
    cfg.num_sinks = 2;
    cfg.shards_per_sink = 2;
    FanInPipeline pipeline(builder, cfg);
    RecordingObserver central;
    pipeline.collector().add_observer(&central);
    for (const Packet& p : packets) pipeline.deliver(p, kHops);
    pipeline.shutdown();
    if (canonical_bytes(central.records) !=
        canonical_bytes(mono_records.records)) {
      std::printf("FAIL: fan-in records differ from monolithic sink\n");
      return 1;
    }
    if (pipeline.transport_counters().frames_dropped != 0 ||
        pipeline.collector().errors_total() != 0) {
      std::printf("FAIL: lossless config dropped frames or saw errors\n");
      return 1;
    }
    std::printf("verified: merged records byte-identical to monolithic\n");
  }

  // Correctness gate 2: starved drop-newest reports exact drop counts.
  {
    FanInConfig cfg;
    cfg.num_sinks = 2;
    cfg.backpressure = BackpressurePolicy::kDropNewest;
    cfg.stream_capacity_bytes = 8192;
    cfg.max_frame_records = 64;
    FanInPipeline pipeline(builder, cfg);
    for (const Packet& p : packets) pipeline.deliver(p, kHops);
    pipeline.ship_epoch();
    pipeline.shutdown();
    const TransportCounters t = pipeline.transport_counters();
    std::uint64_t missed = 0;
    for (unsigned s = 0; s < pipeline.num_sinks(); ++s) {
      missed +=
          pipeline.collector().source_status(pipeline.source_id(s))
              ->frames_missed;
    }
    if (t.frames_dropped == 0 || missed != t.frames_dropped) {
      std::printf("FAIL: drop accounting inexact (dropped=%llu missed=%llu)\n",
                  static_cast<unsigned long long>(t.frames_dropped),
                  static_cast<unsigned long long>(missed));
      return 1;
    }
    std::printf(
        "verified: drop-newest drops counted exactly "
        "(dropped=%llu == receiver gaps)\n\n",
        static_cast<unsigned long long>(t.frames_dropped));
  }

  const unsigned epochs = 8;
  bench::row("%-34s %10s %12s %12s", "configuration", "time", "Mpkts/s",
             "shipped MiB");
  const auto stream_name = [](StreamKind stream) {
    switch (stream) {
      case StreamKind::kSpscRing:
        return "ring";
      case StreamKind::kSocketPair:
        return "socketpair";
      case StreamKind::kDaemonUnix:
        return "daemon-unix";
      case StreamKind::kDaemonTcp:
        return "daemon-tcp";
    }
    return "?";
  };
  for (const StreamKind stream :
       {StreamKind::kSpscRing, StreamKind::kSocketPair,
        StreamKind::kDaemonUnix, StreamKind::kDaemonTcp}) {
    for (const unsigned sinks : {1u, 2u, 4u}) {
      FanInConfig cfg;
      cfg.num_sinks = sinks;
      cfg.shards_per_sink = 1;
      cfg.stream = stream;
      const RunResult r = run_pipeline(builder, packets, cfg, epochs);
      const std::string label = std::string(stream_name(stream)) + ", " +
                                std::to_string(sinks) + " sink(s)";
      bench::row("%-34s %9.3f s %12.2f %12.2f", label.c_str(), r.seconds,
                 mpkts / r.seconds,
                 static_cast<double>(r.bytes_shipped) / (1024.0 * 1024.0));
    }
  }

  // Policy cost under a tight pipe: blocking waits vs counted drops.
  std::printf("\n");
  for (const BackpressurePolicy policy :
       {BackpressurePolicy::kBlock, BackpressurePolicy::kDropNewest}) {
    FanInConfig cfg;
    cfg.num_sinks = 2;
    cfg.stream_capacity_bytes = 16384;
    cfg.max_frame_records = 128;
    cfg.backpressure = policy;
    const RunResult r = run_pipeline(builder, packets, cfg, epochs);
    const bool block = policy == BackpressurePolicy::kBlock;
    bench::row("%-34s %9.3f s   waits=%llu dropped=%llu",
               block ? "16 KiB pipe, block" : "16 KiB pipe, drop-newest",
               r.seconds,
               static_cast<unsigned long long>(r.transport.blocked_waits),
               static_cast<unsigned long long>(r.transport.frames_dropped));
  }
  std::printf(
      "\nNote: ring and socketpair stay in-process (socketpair adds two\n"
      "syscalls per frame leg, the ring none); the daemon kinds cross a\n"
      "listening socket into an epoll event loop on its own thread —\n"
      "connect/accept, nonblocking sends, and kernel socket buffers are\n"
      "all real. Framing cost (CRC-32 + 26-byte header per frame) is\n"
      "shared by every kind.\n");
  return 0;
}
