// Scenario-harness throughput: runs the checked-in .scn specs end to end
// through the full-framework simulator (topology build, CDF traffic,
// fault episodes, all four detection apps as observers) and reports
// discrete-event throughput plus what the apps detected.
//
// Full mode stretches leaf_spine_load until the simulator has moved over a
// million data packets (episode times are unscaled, so fault scenarios run
// at their checked-in durations). Smoke mode runs every scenario once at
// its native duration — enough for CI to catch bit-rot in the scenario
// layer without meaningful numbers.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "scenario/scenario_runner.h"
#include "scenario/scenario_spec.h"

#ifndef PINT_SCENARIO_DIR
#error "PINT_SCENARIO_DIR must point at tests/scenarios"
#endif

namespace pint::scenario {
namespace {

const char* kScenarios[] = {"microburst_storm.scn", "link_failure.scn",
                            "loss_burst.scn", "leaf_spine_load.scn",
                            "reorder_flap.scn"};

ScenarioSpec load_spec(const std::string& name) {
  const ScenarioParseResult parsed =
      parse_scenario_file(std::string(PINT_SCENARIO_DIR) + "/" + name);
  if (!parsed.ok()) {
    for (const ScenarioParseError& e : parsed.errors) {
      std::fprintf(stderr, "%s line %d [%s]: %s\n", name.c_str(), e.line,
                   to_string(e.code), e.message.c_str());
    }
    std::exit(1);
  }
  return *parsed.spec;
}

struct TimedRun {
  ScenarioResult result;
  double seconds = 0.0;
};

TimedRun timed_run(const ScenarioSpec& spec, double scale) {
  ScenarioRunOptions options;
  options.duration_scale = scale;
  options.capture_report_bytes = false;  // keep memory flat on long runs
  const auto t0 = std::chrono::steady_clock::now();
  TimedRun run{run_scenario(spec, options), 0.0};
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return run;
}

// `check_detections` is off for scaled runs: the specs' expect directives
// (utilization bands, event counts) are tuned for native durations and are
// exercised by the scenario test tier; a stretched run only measures
// throughput.
void report(bench::JsonWriter& json, const std::string& config,
            const TimedRun& run, bool check_detections) {
  const auto& c = run.result.counters;
  const double moved =
      static_cast<double>(c.packets_delivered + c.acks_delivered);
  const double pps = run.seconds > 0.0 ? moved / run.seconds : 0.0;
  bench::row("%-20s %10.0f pkts %8.2fs %12.0f pkt/s%s", config.c_str(), moved,
             run.seconds, pps,
             !check_detections       ? ""
             : run.result.all_passed() ? "  passing"
                                       : "  NOT passing");
  json.add("bench_scenario", config, "packets_per_sec", pps, "pps", true);
  json.add("bench_scenario", config, "packets_moved", moved, "count", true);
  if (check_detections) {
    json.add("bench_scenario", config, "detections_passing",
             run.result.all_passed() ? 1.0 : 0.0, "bool", true);
  }
}

}  // namespace
}  // namespace pint::scenario

int main(int argc, char** argv) {
  using namespace pint::scenario;
  const bool smoke = pint::bench::smoke_mode(argc, argv);
  pint::bench::JsonWriter json;

  pint::bench::header("Scenario harness end-to-end (config-driven sims)");
  if (smoke) pint::bench::note_smoke();
  pint::bench::row("%-18s %10s %9s %13s", "scenario", "packets", "wall",
                   "rate");

  for (const char* file : kScenarios) {
    const ScenarioSpec spec = load_spec(file);
    report(json, spec.name, timed_run(spec, 1.0), /*check_detections=*/true);
  }

  {
    // Scale the densest scenario until the simulator moves >= 1M data
    // packets (delivered + acks grow ~linearly with duration). Smoke mode
    // keeps the series present in the JSON (so the baseline comparison
    // sees every config) but stops at a single doubled run.
    ScenarioSpec spec = load_spec("leaf_spine_load.scn");
    double scale = smoke ? 2.0 : 8.0;
    TimedRun run = timed_run(spec, scale);
    const auto moved = [&run] {
      return run.result.counters.packets_delivered +
             run.result.counters.acks_delivered;
    };
    while (!smoke && moved() < 1'000'000) {
      scale *= 2.0;
      run = timed_run(spec, scale);
    }
    std::fprintf(stderr, "  (scaled run: duration x%.0f)\n", scale);
    report(json, "leaf_spine_load_scaled", run, /*check_detections=*/false);
  }

  return json.write(pint::bench::JsonWriter::path_from(argc, argv), smoke)
             ? 0
             : 1;
}
