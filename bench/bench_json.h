// Machine-readable bench results: every harness can emit its measurements
// as JSON next to its human-readable rows, so CI (and humans) can diff
// runs against the checked-in BENCH_baseline.json instead of eyeballing
// stdout. Schema (deliberately flat — one record per measured number):
//
//   {
//     "schema": "pint-bench-v1",
//     "smoke": false,
//     "profile": "1core",
//     "results": [
//       {"bench": "bench_hotpath", "config": "pipeline_sync",
//        "metric": "packets_per_sec", "value": 123456.0, "unit": "pps",
//        "higher_is_better": true},
//       ...
//     ]
//   }
//
// The output path comes from `--json=PATH` on the command line or the
// PINT_BENCH_JSON environment variable; with neither set, nothing is
// written. tools/check_bench_regression.py consumes this format.
//
// "profile" names the host class the numbers were measured on (thread
// budget is the dominant variable for the sharded-sink series: a 1-core
// container and a 64-core box produce numbers that must never be compared
// against each other). It defaults to "<hardware_concurrency>core" and is
// overridden with PINT_BENCH_PROFILE; the regression checker's --profile
// flag matches baselines against it.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace pint::bench {

class JsonWriter {
 public:
  /// Records one measurement. `config` distinguishes variants of one bench
  /// (e.g. "pipeline_sync" vs "pipeline_async"); names are identifiers —
  /// no JSON escaping is applied, so keep them [A-Za-z0-9_.-].
  void add(std::string_view bench, std::string_view config,
           std::string_view metric, double value, std::string_view unit,
           bool higher_is_better = true) {
    results_.push_back(Result{std::string(bench), std::string(config),
                              std::string(metric), value, std::string(unit),
                              higher_is_better});
  }

  /// Overrides the host profile key (default: PINT_BENCH_PROFILE, else
  /// "<hardware_concurrency>core"). Same identifier rules as add().
  void set_profile(std::string_view profile) {
    profile_ = std::string(profile);
  }

  /// The effective host profile key for this run.
  static std::string default_profile() {
    const char* env = std::getenv("PINT_BENCH_PROFILE");
    if (env != nullptr && env[0] != '\0') return std::string(env);
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    return std::to_string(hw) + "core";
  }

  /// Writes the collected results; returns false on I/O failure. No-op
  /// (returns true) when `path` is empty.
  bool write(const std::string& path, bool smoke) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
      return false;
    }
    const std::string profile =
        profile_.empty() ? default_profile() : profile_;
    std::fprintf(f, "{\n  \"schema\": \"pint-bench-v1\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"profile\": \"%s\",\n  \"results\": [",
                 profile.c_str());
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const Result& r = results_[i];
      std::fprintf(f,
                   "%s\n    {\"bench\": \"%s\", \"config\": \"%s\", "
                   "\"metric\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", "
                   "\"higher_is_better\": %s}",
                   i == 0 ? "" : ",", r.bench.c_str(), r.config.c_str(),
                   r.metric.c_str(), r.value, r.unit.c_str(),
                   r.higher_is_better ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    const bool ok = std::fclose(f) == 0;
    if (ok) std::printf("[json results written to %s]\n", path.c_str());
    return ok;
  }

  /// Resolves the output path: `--json=PATH` wins, then PINT_BENCH_JSON,
  /// then empty (no JSON output).
  static std::string path_from(int argc, char** argv) {
    constexpr std::string_view kFlag = "--json=";
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg(argv[i]);
      if (arg.substr(0, kFlag.size()) == kFlag) {
        return std::string(arg.substr(kFlag.size()));
      }
    }
    const char* env = std::getenv("PINT_BENCH_JSON");
    return env != nullptr ? std::string(env) : std::string();
  }

 private:
  struct Result {
    std::string bench;
    std::string config;
    std::string metric;
    double value;
    std::string unit;
    bool higher_is_better;
  };

  std::vector<Result> results_;
  std::string profile_;  // empty -> default_profile() at write time
};

}  // namespace pint::bench
