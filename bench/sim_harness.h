// Shared simulation harness for the NS3-style experiments (Figs. 1, 2, 7, 8,
// 11): builds a fat tree, injects Poisson traffic from a flow-size
// distribution, runs the simulator, and summarizes FCT / slowdown / goodput.
#pragma once

#include <algorithm>
#include <vector>

#include "common/stats.h"
#include "sim/simulator.h"
#include "topology/fat_tree.h"
#include "workload/flow_size_dist.h"
#include "workload/traffic_gen.h"

namespace pint::bench {

struct HarnessConfig {
  double load = 0.5;
  TimeNs traffic_duration = 15 * kMilli;
  TimeNs drain_horizon = 300 * kMilli;  // total sim horizon
  unsigned fat_tree_k = 4;
  std::uint64_t seed = 1;
  SimConfig sim;  // telemetry/transport knobs
};

struct FlowOutcome {
  Bytes size = 0;
  double fct_ns = 0.0;
  double slowdown = 0.0;
  double goodput_bps = 0.0;
  bool done = false;
};

struct HarnessResult {
  std::vector<FlowOutcome> flows;
  SimCounters counters;
  std::size_t offered = 0;

  std::size_t completed() const {
    std::size_t n = 0;
    for (const auto& f : flows) n += f.done;
    return n;
  }

  // Mean FCT over completed flows, optionally restricted by size range.
  double mean_fct(Bytes min_size = 0, Bytes max_size = INT64_MAX) const {
    RunningStats rs;
    for (const auto& f : flows) {
      if (f.done && f.size >= min_size && f.size < max_size) rs.add(f.fct_ns);
    }
    return rs.mean();
  }

  double mean_goodput(Bytes min_size) const {
    RunningStats rs;
    for (const auto& f : flows) {
      if (f.done && f.size >= min_size) rs.add(f.goodput_bps);
    }
    return rs.mean();
  }

  // p-quantile slowdown of completed flows within [min_size, max_size).
  double slowdown_quantile(double q, Bytes min_size, Bytes max_size) const {
    std::vector<double> xs;
    for (const auto& f : flows) {
      if (f.done && f.size >= min_size && f.size < max_size)
        xs.push_back(f.slowdown);
    }
    if (xs.empty()) return 0.0;
    return percentile(xs, q);
  }
};

inline HarnessResult run_harness(const HarnessConfig& hc,
                                 const FlowSizeDist& dist) {
  const FatTree ft = make_fat_tree(hc.fat_tree_k);
  std::vector<bool> is_host(ft.graph.num_nodes(), false);
  for (NodeId h : ft.nodes.hosts) is_host[h] = true;

  SimConfig sim_cfg = hc.sim;
  sim_cfg.seed = hc.seed;
  Simulator sim(ft.graph, is_host, sim_cfg);

  TrafficGenConfig tg;
  tg.load = hc.load;
  tg.num_hosts = static_cast<std::uint32_t>(ft.nodes.hosts.size());
  tg.host_bandwidth_bps = sim_cfg.host_bandwidth_bps;
  tg.duration = hc.traffic_duration;
  tg.seed = hc.seed * 7919 + 13;
  const auto arrivals = generate_traffic(tg, dist);
  for (const auto& fa : arrivals) {
    sim.add_flow(ft.nodes.hosts[fa.src_host], ft.nodes.hosts[fa.dst_host],
                 fa.size, fa.start);
  }
  sim.run_until(hc.drain_horizon);

  HarnessResult out;
  out.offered = arrivals.size();
  out.counters = sim.counters();
  for (const FlowStats& st : sim.flow_stats()) {
    FlowOutcome f;
    f.size = st.size;
    f.done = st.done;
    if (st.done) {
      f.fct_ns = static_cast<double>(st.fct());
      // Ideal: serialize the flow at host line rate + a propagation round
      // trip across its path.
      const double ideal_ns =
          static_cast<double>(st.size) * 8.0 / sim_cfg.host_bandwidth_bps *
              1e9 +
          2.0 * static_cast<double>(st.path_hops + 1) *
              static_cast<double>(sim_cfg.link_delay);
      f.slowdown = std::max(1.0, f.fct_ns / ideal_ns);
      f.goodput_bps = static_cast<double>(st.size) * 8.0 / (f.fct_ns / 1e9);
    }
    out.flows.push_back(f);
  }
  return out;
}

}  // namespace pint::bench
