// Ablations for the design choices behind PINT's static aggregation
// (DESIGN.md Section 2): layer-0 probability tau, XOR layer probability,
// multi-layer vs single-layer vs LNC, hashing vs fragmentation for wide
// values, and the O(log k) bit-vector fast path vs naive per-hop hashing.
#include <chrono>
#include <numeric>

#include "bench/bench_util.h"
#include "coding/encoder.h"
#include "coding/fragmentation.h"
#include "coding/hashed_decoder.h"
#include "coding/lnc.h"
#include "coding/lt_code.h"
#include "coding/peeling_decoder.h"
#include "coding/scheme.h"
#include "common/stats.h"
#include "hash/bit_vectors.h"

using namespace pint;

namespace {

double avg_packets(const SchemeConfig& cfg, unsigned k, int runs,
                   std::uint64_t seed) {
  double total = 0.0;
  for (int r = 0; r < runs; ++r) {
    GlobalHash root(seed + r);
    const InstanceHashes h = make_instance_hashes(root, 0);
    std::vector<std::uint64_t> blocks(k);
    for (unsigned i = 0; i < k; ++i) blocks[i] = mix64(seed + r * 100 + i);
    PeelingDecoder dec(k, cfg, h);
    PacketId p = 1;
    while (!dec.complete()) {
      dec.add_packet(p, encode_path(cfg, h, p, blocks, 0));
      ++p;
    }
    total += static_cast<double>(p - 1);
  }
  return total / runs;
}

}  // namespace

int main() {
  const unsigned k = 25;
  const int runs = 120;

  bench::header("Ablation | layer-0 probability tau (k = 25, one XOR layer)");
  bench::row("%-8s %-14s", "tau", "avg packets");
  for (double tau : {0.25, 0.5, 0.625, 0.75, 0.875, 0.95}) {
    SchemeConfig cfg = make_hybrid_scheme(k);
    cfg.tau = tau;
    bench::row("%-8.3f %-14.1f", tau, avg_packets(cfg, k, runs, 1000));
  }
  bench::row("paper picks tau = 3/4; the curve should be flat-bottomed there.");

  bench::header("Ablation | XOR probability p (k = 25, tau = 3/4)");
  bench::row("%-12s %-14s", "p", "avg packets");
  for (double p : {0.04, 0.08, 0.1869 /* loglogd/logd */, 0.3, 0.5}) {
    SchemeConfig cfg;
    cfg.tau = 0.75;
    cfg.layer_probs = {p};
    bench::row("%-12.4f %-14.1f", p, avg_packets(cfg, k, runs, 2000));
  }

  bench::header("Ablation | scheme family at k = 25 (full-block digests)");
  bench::row("%-22s %-14s", "scheme", "avg packets");
  bench::row("%-22s %-14.1f", "Baseline",
             avg_packets(make_baseline_scheme(), k, runs, 3000));
  bench::row("%-22s %-14.1f", "XOR p=1/d",
             avg_packets(make_xor_scheme(k), k, runs, 3100));
  bench::row("%-22s %-14.1f", "Hybrid",
             avg_packets(make_hybrid_scheme(k), k, runs, 3200));
  bench::row("%-22s %-14.1f", "Multi-layer",
             avg_packets(make_multilayer_scheme(k), k, runs, 3300));
  bench::row("%-22s %-14.1f", "Multi-layer revised",
             avg_packets(make_multilayer_scheme_revised(k), k, runs, 3400));
  {
    double total = 0;
    for (int r = 0; r < runs; ++r) {
      GlobalHash root(3500 + r);
      LncEncoder enc(root);
      LncDecoder dec(k, root);
      std::vector<std::uint64_t> blocks(k);
      for (unsigned i = 0; i < k; ++i) blocks[i] = mix64(r * 100 + i);
      PacketId p = 1;
      while (!dec.complete()) {
        dec.add_packet(p, enc.encode(p, blocks));
        ++p;
      }
      total += static_cast<double>(p - 1);
    }
    bench::row("%-22s %-14.1f (needs full-width digests + O(k^3) decode)",
               "LNC", total / runs);
  }
  {
    // LT fountain code: the single-encoder lower-bound reference — switches
    // cannot implement it because no one of them owns all blocks.
    double total = 0;
    for (int r = 0; r < runs; ++r) {
      GlobalHash root(3600 + r);
      LtEncoder enc(k, root);
      LtDecoder dec(k, root);
      std::vector<std::uint64_t> blocks(k);
      for (unsigned i = 0; i < k; ++i) blocks[i] = mix64(r * 100 + i + 7);
      PacketId p = 1;
      while (!dec.complete()) {
        dec.add_packet(p, enc.encode(p, blocks));
        ++p;
      }
      total += static_cast<double>(p - 1);
    }
    bench::row("%-22s %-14.1f (single-encoder reference, not distributable)",
               "LT / robust soliton", total / runs);
  }
  {
    // Bit-vector fast-path variant of the multi-layer scheme: the decode
    // speedup costs only the sqrt(2) probability rounding.
    const SchemeConfig fast = make_fast(make_multilayer_scheme(k));
    bench::row("%-22s %-14.1f (power-of-two probs, O(log k) decode)",
               "Multi-layer fast", avg_packets(fast, k, runs, 3700));
  }

  bench::header(
      "Ablation | hashing vs fragmentation (32-bit IDs, b = 8, k = 6)");
  {
    const unsigned kk = 6, q = 32, b = 8;
    // Fragmentation.
    double frag_total = 0;
    const int freps = 40;
    for (int r = 0; r < freps; ++r) {
      GlobalHash root(4000 + r);
      FragmentedCodec codec(kk, q, b, make_hybrid_scheme(kk), root);
      std::vector<std::uint64_t> values(kk);
      for (unsigned i = 0; i < kk; ++i) {
        values[i] = mix64(r * 50 + i) & 0xFFFFFFFF;
      }
      PacketId p = 1;
      while (!codec.complete()) {
        Digest d = 0;
        for (HopIndex i = 1; i <= kk; ++i) {
          d = codec.encode_step(p, i, d, values[i - 1]);
        }
        codec.add_packet(p, d);
        ++p;
      }
      frag_total += static_cast<double>(p - 1);
    }
    // Hashing with a 256-value universe.
    double hash_total = 0;
    std::vector<std::uint64_t> universe(256);
    std::iota(universe.begin(), universe.end(), 77);
    for (int r = 0; r < freps; ++r) {
      HashedDecoderConfig cfg;
      cfg.k = kk;
      cfg.bits = b;
      cfg.instances = 1;
      cfg.scheme = make_hybrid_scheme(kk);
      GlobalHash root(5000 + r);
      HashedPathDecoder dec(cfg, root, universe);
      std::vector<std::uint64_t> blocks(kk);
      for (unsigned i = 0; i < kk; ++i) {
        blocks[i] = universe[(r * 7 + i * 13) % 256];
      }
      PacketId p = 1;
      while (!dec.complete()) {
        dec.add_packet(p, encode_path_multi(cfg.scheme, root, 1, p, blocks, b));
        ++p;
      }
      hash_total += static_cast<double>(p - 1);
    }
    bench::row("%-22s %-14.1f", "fragmentation (F=4)", frag_total / freps);
    bench::row("%-22s %-14.1f", "hashing (|V|=256)", hash_total / freps);
    bench::row("hashing wins when the value universe is known (Section 4.2).");
  }

  bench::header("Ablation | decode fast path: bit vectors vs per-hop hashing");
  {
    const unsigned kk = 256;
    GlobalHash root(6000);
    BitVectorSelector sel(root, 5);  // p = 1/32
    const int packets = 200000;
    // Naive: evaluate g per hop.
    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t acc1 = 0;
    for (PacketId p = 0; p < static_cast<PacketId>(packets); ++p) {
      for (unsigned i = 0; i < kk; ++i) {
        acc1 += root.below2(p, i, 1.0 / 32.0);
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    // Fast: O(log 1/p) words.
    std::uint64_t acc2 = 0;
    for (PacketId p = 0; p < static_cast<PacketId>(packets); ++p) {
      acc2 += sel.select(p).count(kk);
    }
    auto t2 = std::chrono::steady_clock::now();
    const double naive_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double fast_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    bench::row("%-22s %-10.1f ms  (%llu set bits)", "naive per-hop g",
               naive_ms, static_cast<unsigned long long>(acc1));
    bench::row("%-22s %-10.1f ms  (%llu set bits)", "bit-vector AND",
               fast_ms, static_cast<unsigned long long>(acc2));
    bench::row(
        "speedup: %.1fx (Section 4.2 'Reducing the Decoding Complexity')",
               naive_ms / fast_ms);
  }
  return 0;
}
