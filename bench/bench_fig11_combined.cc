// Fig. 11 | Concurrent execution of all three use cases under a 16-bit
// global budget versus each running alone with the full 16 bits.
// Combined plan (paper Section 6.4): path tracing (8b) on every packet;
// latency quantiles (8b) on 15/16 of packets; HPCC feedback (8b) on 1/16.
// Alone: path 2x(b=8); latency b=16; HPCC b=16 digests every packet...
// except HPCC-alone also uses p=1/16 since Fig. 8 showed that suffices —
// we follow the paper and compare against the stand-alone configurations.
//
// Three panels: HPCC 95th-pct slowdown, average packets to trace a path,
// tail-latency relative error.
#include <numeric>

#include "bench/bench_util.h"
#include "bench/sim_harness.h"
#include "common/stats.h"
#include "pint/dynamic_aggregation.h"
#include "pint/framework.h"
#include "pint/query_engine.h"
#include "pint/static_aggregation.h"
#include "topology/fat_tree.h"

using namespace pint;
using namespace pint::bench;

namespace {

// --- panel 1: HPCC slowdown (simulator) -------------------------------------

double hpcc_p95_slowdown(unsigned bits, double p, std::uint64_t seed) {
  HarnessConfig hc;
  hc.load = 0.5;
  hc.traffic_duration = 12 * kMilli;
  hc.drain_horizon = 500 * kMilli;
  hc.fat_tree_k = 4;
  hc.seed = seed;
  hc.sim.transport = TransportKind::kHpcc;
  hc.sim.telemetry = TelemetryMode::kPint;
  hc.sim.pint_bit_budget = bits;
  hc.sim.pint_frequency = p;
  hc.sim.host_bandwidth_bps = 10e9;
  hc.sim.fabric_bandwidth_bps = 40e9;
  hc.sim.hpcc.base_rtt = 20 * kMicro;
  const auto r = run_harness(hc, FlowSizeDist::hadoop());
  return r.slowdown_quantile(0.95, 0, INT64_MAX);
}

// --- panel 2: path tracing packets (fat-tree 5-hop path) --------------------

double tracing_avg_packets(unsigned bits, unsigned instances, double freq,
                           std::uint64_t seed) {
  const FatTree ft = make_fat_tree(8, false);
  std::vector<std::uint64_t> universe(ft.graph.num_nodes());
  std::iota(universe.begin(), universe.end(), 0);
  const std::vector<SwitchId> path{
      static_cast<SwitchId>(ft.nodes.edges[0]),
      static_cast<SwitchId>(ft.nodes.aggs[0]),
      static_cast<SwitchId>(ft.nodes.cores[0]),
      static_cast<SwitchId>(ft.nodes.aggs[4]),
      static_cast<SwitchId>(ft.nodes.edges[4])};
  const unsigned k = 5;
  GlobalHash freq_hash(seed ^ 0xF1);
  double total = 0.0;
  const int runs = 60;
  for (int r = 0; r < runs; ++r) {
    PathTracingConfig cfg;
    cfg.bits = bits;
    cfg.instances = instances;
    cfg.d = 5;
    PathTracingQuery query(cfg, seed + r * 31);
    auto dec = query.make_decoder(k, universe);
    PacketId p = 1;
    std::uint64_t sent = 0;
    while (!dec.complete()) {
      ++sent;
      ++p;
      if (!freq_hash.below(p, freq)) continue;  // packet not carrying query
      std::vector<Digest> lanes(instances, 0);
      for (HopIndex i = 1; i <= k; ++i) query.encode(p, i, path[i - 1], lanes);
      dec.add_packet(p, lanes);
    }
    total += static_cast<double>(sent);
  }
  return total / runs;
}

// --- panel 3: tail latency error ---------------------------------------------

double tail_latency_error(unsigned bits, double freq, std::uint64_t seed) {
  const unsigned k = 5;
  DynamicAggregationConfig cfg;
  cfg.bits = bits;
  cfg.max_value = 1e7;
  DynamicAggregationQuery query(cfg, seed);
  FlowLatencyRecorder rec(k, 0, seed);
  GlobalHash freq_hash(seed ^ 0xF2);
  Rng rng(seed ^ 0xF3);
  std::vector<std::vector<double>> truth(k);
  const int packets = 4000;
  for (PacketId p = 1; p <= packets; ++p) {
    Digest d = 0;
    bool carries = freq_hash.below(p, freq);
    for (HopIndex i = 1; i <= k; ++i) {
      const double v = 500.0 * i + rng.exponential(1.0 / (200.0 * i));
      truth[i - 1].push_back(v);
      if (carries) d = query.encode_step(p, i, d, v);
    }
    if (carries) rec.add(query.decode(p, d, k));
  }
  double err = 0.0;
  for (HopIndex hop = 1; hop <= k; ++hop) {
    err += relative_error(rec.quantile(hop, 0.99).value_or(0),
                          percentile(truth[hop - 1], 0.99));
  }
  return err * 100.0 / k;
}

}  // namespace

int main() {
  bench::header("Fig. 11 | three concurrent queries in 16 bits vs alone");

  // Stand-alone configurations (16 bits each) vs the combined plan.
  const double sd_alone = hpcc_p95_slowdown(16, 1.0 / 16.0, 71);
  const double sd_comb = hpcc_p95_slowdown(8, 1.0 / 16.0, 71);
  bench::row("%-28s | %-10s %-10s", "panel", "baseline", "combined");
  bench::row("%-28s | %-10.2f %-10.2f", "HPCC p95 slowdown", sd_alone,
             sd_comb);

  const double tr_alone = tracing_avg_packets(8, 2, 1.0, 81);
  const double tr_comb = tracing_avg_packets(8, 1, 1.0, 81);
  bench::row("%-28s | %-10.1f %-10.1f", "path tracing avg packets", tr_alone,
             tr_comb);

  const double lat_alone = tail_latency_error(16, 1.0, 91);
  const double lat_comb = tail_latency_error(8, 15.0 / 16.0, 91);
  bench::row("%-28s | %-10.1f %-10.1f", "tail latency rel. error [%]",
             lat_alone, lat_comb);

  // Also verify the query-engine plan the paper describes.
  Query path_q;
  path_q.name = "path";
  path_q.aggregation = AggregationType::kStaticPerFlow;
  path_q.bit_budget = 8;
  path_q.frequency = 1.0;
  Query lat_q;
  lat_q.name = "latency";
  lat_q.aggregation = AggregationType::kDynamicPerFlow;
  lat_q.bit_budget = 8;
  lat_q.frequency = 15.0 / 16.0;
  Query cc_q;
  cc_q.name = "hpcc";
  cc_q.aggregation = AggregationType::kPerPacket;
  cc_q.bit_budget = 8;
  cc_q.frequency = 1.0 / 16.0;
  QueryEngine engine({path_q, lat_q, cc_q}, 16);
  bench::row("\nexecution plan (Section 6.4):");
  for (const QuerySet& s : engine.plan().sets) {
    std::string names;
    for (std::size_t qi : s.query_indices) {
      names += engine.queries()[qi].name + " ";
    }
    bench::row("  {%s} with probability %.4f", names.c_str(), s.probability);
  }
  bench::row(
      "\nexpected shape (paper): combined costs only a little — short flows\n"
      "~6.6%% slower, path tracing +0.5%% packets, latency error +0.7pp —\n"
      "for a total of two bytes per packet.");

  // --- live combined run: the full framework riding on simulated traffic ---
  bench::header("Fig. 11 (live) | three queries on real simulated traffic");
  {
    const FatTree ft = make_fat_tree(4);
    std::vector<bool> is_host(ft.graph.num_nodes(), false);
    for (NodeId h : ft.nodes.hosts) is_host[h] = true;
    SimConfig cfg;
    cfg.telemetry = TelemetryMode::kPint;
    cfg.pint_full = true;
    cfg.pint_bit_budget = 16;
    cfg.pint_frequency = 1.0 / 16.0;
    cfg.transport = TransportKind::kHpcc;
    cfg.host_bandwidth_bps = 10e9;
    cfg.fabric_bandwidth_bps = 40e9;
    cfg.hpcc.base_rtt = 20 * kMicro;
    cfg.seed = 7;
    Simulator sim(ft.graph, is_host, cfg);

    TrafficGenConfig tg;
    tg.load = 0.5;
    tg.num_hosts = static_cast<std::uint32_t>(ft.nodes.hosts.size());
    tg.host_bandwidth_bps = cfg.host_bandwidth_bps;
    tg.duration = 8 * kMilli;
    tg.seed = 77;
    const auto arrivals = generate_traffic(tg, FlowSizeDist::hadoop());
    std::vector<std::uint32_t> ids;
    for (const auto& fa : arrivals) {
      ids.push_back(sim.add_flow(ft.nodes.hosts[fa.src_host],
                                 ft.nodes.hosts[fa.dst_host], fa.size,
                                 fa.start));
    }
    sim.run_until(500 * kMilli);

    std::size_t done = 0, decoded = 0, with_latency = 0;
    double progress_sum = 0.0;
    for (std::uint32_t id : ids) {
      const FlowStats& st = sim.flow_stats()[id];
      if (!st.done) continue;
      ++done;
      const std::uint64_t fkey = sim.framework_flow_key(id);
      progress_sum += sim.framework()->path_progress(fkey);
      if (sim.framework()->flow_path(fkey).has_value()) ++decoded;
      if (sim.framework()->latency_quantile(fkey, 1, 0.5).has_value())
        ++with_latency;
    }
    bench::row("flows completed                : %zu / %zu", done, ids.size());
    bench::row("paths fully decoded            : %zu (%.0f%%)", decoded,
               done ? 100.0 * decoded / done : 0.0);
    bench::row("mean path decode progress      : %.0f%%",
               done ? 100.0 * progress_sum / done : 0.0);
    bench::row("flows with latency quantiles   : %zu (%.0f%%)", with_latency,
               done ? 100.0 * with_latency / done : 0.0);
    bench::row(
        "\nshort (often single-packet) Hadoop flows cannot be traced — the\n"
        "paper's Section 7 limitation — while larger flows decode fully,\n"
        "all from the same 2 bytes/packet that also fed HPCC and latency.");
  }
  return 0;
}
