// Fig. 7 | HPCC with INT vs HPCC with PINT (8-bit digests):
//  (a) goodput gain of PINT over INT for large flows vs network load,
//  (b) 95th-percentile slowdown per flow-size decile, web-search @ 50%,
//  (c) same for the Hadoop workload.
// The INT configuration carries HPCC's three 4-byte values per hop plus the
// 8-byte instruction header; PINT carries a single byte.
#include <vector>

#include "bench/bench_util.h"
#include "bench/sim_harness.h"

using namespace pint;
using namespace pint::bench;

namespace {

bool g_smoke = false;

HarnessResult run_hpcc(TelemetryMode mode, const FlowSizeDist& dist,
                       double load, std::uint64_t seed) {
  HarnessConfig hc;
  hc.load = load;
  hc.traffic_duration = (g_smoke ? 1 : 12) * kMilli;
  hc.drain_horizon = 500 * kMilli;
  hc.fat_tree_k = 4;
  hc.seed = seed;
  hc.sim.transport = TransportKind::kHpcc;
  hc.sim.telemetry = mode;
  hc.sim.int_values_per_hop = 3;
  hc.sim.pint_bit_budget = 8;
  hc.sim.pint_frequency = 1.0;
  hc.sim.host_bandwidth_bps = 10e9;
  hc.sim.fabric_bandwidth_bps = 40e9;
  hc.sim.hpcc.base_rtt = 20 * kMicro;
  return run_harness(hc, dist);
}

void slowdown_table(const char* title, const FlowSizeDist& dist,
                    std::uint64_t seed) {
  bench::header(title);
  const HarnessResult int_r = run_hpcc(TelemetryMode::kInt, dist, 0.5, seed);
  const HarnessResult pint_r = run_hpcc(TelemetryMode::kPint, dist, 0.5, seed);
  bench::row("%-22s | %-12s %-12s", "flow size bucket", "HPCC(INT)",
             "HPCC(PINT)");
  const auto& d = dist.deciles();
  Bytes lo = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const Bytes hi = d[i];
    bench::row("%-10lld-%-11lld | %-12.2f %-12.2f",
               static_cast<long long>(lo), static_cast<long long>(hi),
               int_r.slowdown_quantile(0.95, lo, hi + 1),
               pint_r.slowdown_quantile(0.95, lo, hi + 1));
    lo = hi + 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  g_smoke = bench::smoke_mode(argc, argv);
  bench::header("Fig. 7a | large-flow goodput gain of PINT over INT vs load");
  if (g_smoke) bench::note_smoke();
  bench::row("%-8s | %-14s %-14s %-10s", "load", "INT [Gbps]", "PINT [Gbps]",
             "gain");
  const Bytes kLarge = 2'000'000;
  for (double load : {0.3, 0.5, 0.7}) {
    const auto int_r =
        run_hpcc(TelemetryMode::kInt, FlowSizeDist::web_search(), load, 11);
    const auto pint_r =
        run_hpcc(TelemetryMode::kPint, FlowSizeDist::web_search(), load, 11);
    const double gi = int_r.mean_goodput(kLarge) / 1e9;
    const double gp = pint_r.mean_goodput(kLarge) / 1e9;
    bench::row("%-8.0f%% | %-14.3f %-14.3f %+-9.1f%%", load * 100, gi, gp,
               gi > 0 ? (gp / gi - 1.0) * 100 : 0.0);
  }

  slowdown_table(
      "Fig. 7b | 95th-pct slowdown per size decile (web search, 50%)",
                 FlowSizeDist::web_search(), 21);
  slowdown_table("Fig. 7c | 95th-pct slowdown per size decile (Hadoop, 50%)",
                 FlowSizeDist::hadoop(), 31);
  bench::row(
      "\nexpected shape (paper): PINT tracks INT overall, slightly worse on\n"
      "the shortest flows, better on long flows (bandwidth saved); the gain\n"
      "for large flows grows with load (up to ~71%% at 70%% in the paper's\n"
      "100G testbed).");
  return 0;
}
