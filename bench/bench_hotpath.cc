// End-to-end sink hot-path benchmark: packets/sec through
// at_switch -> ShardedSink -> report codec -> framed fan-in -> observers,
// across the PR's optimization axes:
//
//   * observer delivery: synchronous (the pre-PR path) vs async relay
//     (Builder::async_observers) under kBlock and kDropNewest;
//   * Recording-Module allocation: slab arena on vs off;
//   * decode: materializing decode()+dispatch vs zero-copy streaming
//     dispatch() (stage micro-benchmark);
//   * RecordingStore churn: arena on vs off (stage micro-benchmark).
//
// `pipeline_sync_heap_*` is the pre-PR configuration (synchronous
// observers, heap-backed stores) kept runnable behind toggles, so
// before/after is measured by one binary on one machine. Two correctness
// gates run inside the bench: lossless configs must produce fan-in output
// canonically byte-identical to a monolithic sink, and drop-newest
// configs must account for every shed event exactly.
//
// Results print as rows and, with --json=PATH or PINT_BENCH_JSON, land in
// the bench-json schema for tools/check_bench_regression.py (see
// docs/PERFORMANCE.md for the methodology and BENCH_baseline.json for the
// checked-in snapshot).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "pint/frame.h"
#include "pint/framework.h"
#include "pint/recording_store.h"
#include "pint/report_codec.h"
#include "pint/sharded_sink.h"
#include "sim/fanin.h"

namespace pint::bench {
namespace {

constexpr unsigned kHops = 5;

struct Workload {
  std::vector<Packet> packets;
  std::size_t flows = 0;
};

PintFramework::Builder three_query_builder() {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 32; ++s) universe.push_back(s);
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0xC0FFEE)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
          cc_tuning));
  return builder;
}

FiveTuple tuple_of_flow(std::size_t flow) {
  FiveTuple t;
  t.src_ip = 0x0A000000u + static_cast<std::uint32_t>(flow % 251);
  t.dst_ip = 0x0B000000u + static_cast<std::uint32_t>(flow % 199);
  t.src_port = static_cast<std::uint16_t>(1000 + flow % 50000);
  t.dst_port = 80;
  return t;
}

// Flows interleaved round-robin, digests encoded by a "network" replica.
// Returns the workload plus the measured at_switch encode rate.
Workload make_traffic(std::size_t flows, std::size_t packets_per_flow,
                      double* encode_pps) {
  const auto network = three_query_builder().build_or_throw();
  Workload w;
  w.flows = flows;
  w.packets.reserve(flows * packets_per_flow);
  PacketId next_id = 1;
  for (std::size_t j = 0; j < packets_per_flow; ++j) {
    for (std::size_t f = 0; f < flows; ++f) {
      Packet p;
      p.id = next_id++;
      p.tuple = tuple_of_flow(f);
      w.packets.push_back(std::move(p));
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (HopIndex i = 1; i <= kHops; ++i) {
    // Batched per hop is the real switch shape: every packet crossing one
    // switch under one view. Flows still need per-flow paths, so encode
    // per flow-group via the scalar path (view differs per flow).
    for (Packet& p : w.packets) {
      const std::size_t f = (p.id - 1) % w.flows;
      SwitchView view(static_cast<SwitchId>(f % 8 + i));
      view.set(metric::kHopLatencyNs, 100.0 * i + static_cast<double>(f % 97));
      view.set(metric::kLinkUtilization, 0.1 * i + 0.001 * (f % 10));
      network->at_switch(p, i, view);
    }
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  if (encode_pps != nullptr) {
    *encode_pps =
        static_cast<double>(w.packets.size()) * kHops / dt.count();
  }
  return w;
}

// Sink-side "application": per-event work of tunable weight, the expensive
// dashboard/detector an operator hangs off the sink. FNV-mixing loops are
// deterministic, unoptimizable-away work.
struct DashboardObserver : SinkObserver {
  unsigned work = 0;
  std::uint64_t events = 0;
  std::uint64_t acc = 0xcbf29ce484222325ULL;

  void on_observation(const SinkContext& ctx, std::string_view,
                      const Observation&) override {
    ++events;
    std::uint64_t h = acc ^ ctx.flow ^ ctx.packet_id;
    for (unsigned i = 0; i < work; ++i) h = (h ^ (h >> 29)) * 0x100000001B3ULL;
    acc = h;
  }
  void on_path_decoded(const SinkContext& ctx, std::string_view,
                       const std::vector<SwitchId>& path) override {
    ++events;
    std::uint64_t h = acc ^ ctx.flow ^ path.size();
    for (unsigned i = 0; i < work; ++i) h = (h ^ (h >> 29)) * 0x100000001B3ULL;
    acc = h;
  }
};

// Collector-side record capture for the identity gate.
struct CollectingObserver : SinkObserver {
  struct Rec {
    SinkContext ctx;
    std::string query;
    bool path_event = false;
    Observation obs{};
    std::vector<SwitchId> path;
  };
  std::vector<Rec> records;

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    records.push_back({ctx, std::string(query), false, obs, {}});
  }
  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    records.push_back({ctx, std::string(query), true, {}, path});
  }
};

std::vector<std::uint8_t> canonical_bytes(
    std::vector<CollectingObserver::Rec> records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const auto& a, const auto& b) {
                     return a.ctx.packet_id < b.ctx.packet_id;
                   });
  ReportEncoder enc;
  for (const auto& rec : records) {
    if (rec.path_event) {
      enc.add_path(rec.ctx, rec.query, rec.path);
    } else {
      enc.add(rec.ctx, rec.query, rec.obs);
    }
  }
  return enc.finish();
}

struct PipelineConfig {
  std::string name;
  bool arena = true;
  std::size_t async_depth = 0;  // 0 = sync
  OverflowPolicy policy = OverflowPolicy::kBlock;
  unsigned observer_work = 0;
  unsigned shards = 2;
  unsigned relay_threads = 1;  // async only; clamped to shard count
};

struct PipelineRun {
  double pps = 0;
  std::uint64_t sink_events = 0;     // delivered to sink-side observers
  std::uint64_t sink_drops = 0;      // shed by kDropNewest
  std::uint64_t fanin_records = 0;   // records the collector replayed
  std::vector<std::uint8_t> canonical;  // fan-in output, canonicalized
};

// One timed pass: submit everything, flush, codec-chunk, frame, ingest.
PipelineRun run_pipeline(const Workload& w, const PipelineConfig& cfg) {
  auto builder = three_query_builder();
  builder.recording_arena(cfg.arena);
  if (cfg.async_depth > 0) {
    builder.async_observers(cfg.async_depth, cfg.policy, cfg.relay_threads);
  }

  ShardedSink sink(builder, cfg.shards);
  DashboardObserver dashboard;
  dashboard.work = cfg.observer_work;
  ReportEncoder encoder;
  EncodingObserver tap(encoder);
  sink.add_observer(&dashboard);
  sink.add_observer(&tap);

  FanInCollector collector;
  CollectingObserver collected;
  collector.add_observer(&collected);
  FrameWriter writer(/*source=*/1);

  constexpr std::size_t kSubmitBatch = 512;
  constexpr std::size_t kFrameRecords = 1024;
  const std::span<const Packet> packets(w.packets);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> wire;
  for (std::size_t off = 0; off < packets.size(); off += kSubmitBatch) {
    const std::size_t n = std::min(kSubmitBatch, packets.size() - off);
    sink.submit(packets.subspan(off, n), kHops);
  }
  sink.flush();
  wire = writer.make_open();
  for (const std::vector<std::uint8_t>& chunk :
       encoder.finish_chunked(kFrameRecords)) {
    const std::vector<std::uint8_t> frame = writer.make_payload(chunk);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  {
    const std::vector<std::uint8_t> close = writer.make_close();
    wire.insert(wire.end(), close.begin(), close.end());
  }
  collector.ingest_stream(1, wire);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;

  PipelineRun run;
  run.pps = static_cast<double>(packets.size()) / dt.count();
  run.sink_events = dashboard.events;
  const TransportCounters t = sink.observer_counters();
  run.sink_drops = t.observer_drops;
  run.fanin_records = collector.records_ingested();
  run.canonical = canonical_bytes(std::move(collected.records));
  return run;
}

// Best-of-N wall-clock over the whole config matrix, rep-major: each rep
// builds a fresh pipeline (stores start empty), so reps are independent
// and the best rep is the least-disturbed. Interleaving the configs
// inside each rep — rather than running one config's reps back to back —
// means a slow noise epoch on the host degrades every config's draw for
// that rep equally instead of biasing whichever config it landed on.
std::vector<PipelineRun> best_of_matrix(const Workload& w,
                                        const std::vector<PipelineConfig>& cfgs,
                                        unsigned reps) {
  std::vector<PipelineRun> best(cfgs.size());
  for (unsigned r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      PipelineRun run = run_pipeline(w, cfgs[i]);
      if (run.pps > best[i].pps) best[i] = std::move(run);
    }
  }
  return best;
}

// Monolithic single-framework reference for the identity gate.
std::vector<std::uint8_t> monolithic_canonical(const Workload& w) {
  const auto fw = three_query_builder().build_or_throw();
  CollectingObserver collected;
  fw->add_observer(&collected);
  fw->at_sink(std::span<const Packet>(w.packets), kHops);
  return canonical_bytes(std::move(collected.records));
}

// Decode-stage micro: materializing decode()+dispatch vs streaming
// zero-copy dispatch on identical buffers.
void bench_decode_stage(const Workload& w, unsigned reps, JsonWriter& json) {
  // Real buffers: the workload's own observer stream, chunked.
  const auto fw = three_query_builder().build_or_throw();
  ReportEncoder encoder;
  EncodingObserver tap(encoder);
  fw->add_observer(&tap);
  fw->at_sink(std::span<const Packet>(w.packets), kHops);
  const std::vector<std::vector<std::uint8_t>> buffers =
      encoder.finish_chunked(1024);

  struct NullObserver : SinkObserver {
    std::uint64_t events = 0;
    void on_observation(const SinkContext&, std::string_view,
                        const Observation&) override {
      ++events;
    }
    void on_path_decoded(const SinkContext&, std::string_view,
                         const std::vector<SwitchId>&) override {
      ++events;
    }
  };

  double mat_rps = 0;
  double zc_rps = 0;
  std::uint64_t mat_events = 0;
  std::uint64_t zc_events = 0;
  for (unsigned r = 0; r < reps; ++r) {
    {
      ReportDecoder dec;
      NullObserver obs;
      SinkObserver* observers[] = {&obs};
      std::uint64_t records = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (const auto& buf : buffers) {
        std::vector<StreamRecord> out;
        if (dec.decode(buf, out)) {
          dispatch(out, observers);
          records += out.size();
        }
      }
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      mat_rps = std::max(mat_rps, static_cast<double>(records) / dt.count());
      mat_events = obs.events;
    }
    {
      ReportDecoder dec;
      NullObserver obs;
      SinkObserver* observers[] = {&obs};
      std::uint64_t records = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (const auto& buf : buffers) {
        std::ignore = dec.dispatch(buf, observers, &records);
      }
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      zc_rps = std::max(zc_rps, static_cast<double>(records) / dt.count());
      zc_events = obs.events;
    }
  }
  if (mat_events != zc_events) {
    std::printf("GATE FAILED: decode paths disagree (%llu vs %llu events)\n",
                static_cast<unsigned long long>(mat_events),
                static_cast<unsigned long long>(zc_events));
    std::exit(1);
  }
  row("  decode materialize         %12.0f records/s", mat_rps);
  row("  decode zero-copy dispatch  %12.0f records/s   (%.2fx)", zc_rps,
      zc_rps / mat_rps);
  json.add("bench_hotpath", "decode_materialize", "records_per_sec", mat_rps,
           "rps");
  json.add("bench_hotpath", "decode_zerocopy", "records_per_sec", zc_rps,
           "rps");
}

// RecordingStore churn micro: create/evict cycling at a full ceiling,
// arena on vs off.
void bench_store_stage(bool smoke, unsigned reps, JsonWriter& json) {
  using Store = RecordingStore<std::vector<std::uint64_t>>;
  const std::size_t touches = smoke ? 50'000 : 2'000'000;
  const auto run = [&](bool arena) {
    double best = 0;
    for (unsigned r = 0; r < reps; ++r) {
      Store store(
          64 << 10, [](std::uint64_t key) {
            return std::vector<std::uint64_t>(8, key);
          },
          [](const std::vector<std::uint64_t>& v) {
            return vector_entry_bytes(v);
          });
      store.set_arena(arena);
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < touches; ++i) {
        store.touch(i % 100'000);  // far more flows than the ceiling holds
      }
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      best = std::max(best, static_cast<double>(touches) / dt.count());
    }
    return best;
  };
  const double heap = run(false);
  const double arena = run(true);
  row("  store churn heap           %12.0f touches/s", heap);
  row("  store churn arena          %12.0f touches/s   (%.2fx)", arena,
      arena / heap);
  json.add("bench_hotpath", "store_churn_heap", "touches_per_sec", heap,
           "tps");
  json.add("bench_hotpath", "store_churn_arena", "touches_per_sec", arena,
           "tps");
}

int run(int argc, char** argv) {
  const bool smoke = smoke_mode(argc, argv);
  header("bench_hotpath: end-to-end sink hot path (PR 5)");
  if (smoke) note_smoke();

  const std::size_t flows = smoke ? 80 : 600;
  const std::size_t packets_per_flow = smoke ? 10 : 60;
  // Each pipeline pass times a ~50 ms window; co-tenant interference on
  // the CI host swings single draws by ±15%+. Best-of-7 converges both
  // sides of every before/after ratio to their least-disturbed draw.
  const unsigned reps = smoke ? 1 : 7;
  constexpr unsigned kHeavyWork = 192;  // FNV rounds per observer event

  double encode_pps = 0;
  const Workload w = make_traffic(flows, packets_per_flow, &encode_pps);
  row("workload: %zu flows x %zu packets, %u hops, 3-query mix", flows,
      packets_per_flow, kHops);
  row("  at_switch encode           %12.0f hop-encodes/s", encode_pps);

  JsonWriter json;
  row("  host profile               %12s", JsonWriter::default_profile().c_str());
  json.add("bench_hotpath", "at_switch", "hop_encodes_per_sec", encode_pps,
           "eps");

  const std::vector<std::uint8_t> reference = monolithic_canonical(w);

  // The measured matrix. *_heavy configs model an expensive sink-side
  // observer (dashboard/detector); pipeline_sync_heap_* is the pre-PR
  // shape (before), the rest are this PR's configurations (after).
  //
  // Async depth: with the chunked relay transport the ring depth is an
  // in-flight *event budget*, not a per-event handshake count. 1024 events
  // is barely two submit bursts (~2 x 512 packets x ~2 events/packet), so
  // on hosts with fewer cores than threads the producer and relay are
  // forced into lockstep — each runs for one burst, blocks, and yields.
  // kAsyncDepth gives both sides several bursts of runway between context
  // switches; at ~136 B/event it bounds in-flight memory at ~2 MiB/shard.
  constexpr std::size_t kAsyncDepth = 16384;
  const std::vector<PipelineConfig> configs = {
      {"pipeline_sync_heap_light", /*arena=*/false, 0, OverflowPolicy::kBlock,
       0},
      {"pipeline_arena_light", /*arena=*/true, 0, OverflowPolicy::kBlock, 0},
      {"pipeline_async_block_light", /*arena=*/true, kAsyncDepth,
       OverflowPolicy::kBlock, 0},
      {"pipeline_sync_heap_heavy", /*arena=*/false, 0, OverflowPolicy::kBlock,
       kHeavyWork},
      {"pipeline_arena_heavy", /*arena=*/true, 0, OverflowPolicy::kBlock,
       kHeavyWork},
      {"pipeline_async_block_heavy", /*arena=*/true, kAsyncDepth,
       OverflowPolicy::kBlock, kHeavyWork},
      {"pipeline_async_drop_heavy", /*arena=*/true, 256,
       OverflowPolicy::kDropNewest, kHeavyWork},
  };

  std::uint64_t total_events = 0;  // lossless ground truth, set by 1st run
  row("%-28s %14s %10s %10s", "config", "packets/s", "events", "drops");
  const std::vector<PipelineRun> results = best_of_matrix(w, configs, reps);
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    const PipelineConfig& cfg = configs[ci];
    const PipelineRun& result = results[ci];
    row("%-28s %14.0f %10llu %10llu", cfg.name.c_str(), result.pps,
        static_cast<unsigned long long>(result.sink_events),
        static_cast<unsigned long long>(result.sink_drops));
    json.add("bench_hotpath", cfg.name, "packets_per_sec", result.pps,
             "pps");

    const bool lossless = cfg.policy == OverflowPolicy::kBlock;
    if (lossless) {
      if (total_events == 0) total_events = result.sink_events;
      // Gate 1: lossless fan-in output is byte-identical (canonicalized)
      // to the monolithic sink, whatever the delivery/allocation mode.
      if (result.canonical != reference) {
        std::printf("GATE FAILED: %s fan-in output differs from monolithic\n",
                    cfg.name.c_str());
        return 1;
      }
      if (result.sink_events != total_events || result.sink_drops != 0) {
        std::printf("GATE FAILED: %s lost observer events (%llu/%llu)\n",
                    cfg.name.c_str(),
                    static_cast<unsigned long long>(result.sink_events),
                    static_cast<unsigned long long>(total_events));
        return 1;
      }
    } else {
      // Gate 2: drop-newest sheds, and accounts for every shed event.
      if (result.sink_events + result.sink_drops != total_events) {
        std::printf(
            "GATE FAILED: %s drop accounting inexact "
            "(%llu delivered + %llu dropped != %llu emitted)\n",
            cfg.name.c_str(),
            static_cast<unsigned long long>(result.sink_events),
            static_cast<unsigned long long>(result.sink_drops),
            static_cast<unsigned long long>(total_events));
        return 1;
      }
    }
  }
  row("gates: fan-in identity OK, drop accounting exact OK");

  // Relay/worker thread-scaling matrix: how the async transport behaves as
  // the worker (shard) and relay pools grow. On a 1-core host every row is
  // oversubscribed and the series documents scheduling overhead, not
  // speedup — which is exactly why the numbers are keyed by host profile
  // (see bench_json.h) and only ever compared within one profile. Runs in
  // smoke mode too, so CI exercises the multi-relay construction paths.
  header("thread scaling (async transport, kBlock)");
  row("%-28s %14s %10s %10s", "config", "packets/s", "events", "drops");
  std::vector<PipelineConfig> scaling;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    PipelineConfig cfg;
    cfg.name = "scale_workers_" + std::to_string(workers);
    cfg.async_depth = kAsyncDepth;
    cfg.shards = workers;
    scaling.push_back(std::move(cfg));
  }
  for (const unsigned relays : {1u, 2u, 4u, 8u}) {
    // 8 shards so every relay count differs (relays are clamped to the
    // shard count); scale_relays_1 intentionally duplicates
    // scale_workers_8 as the series' shared anchor point.
    PipelineConfig cfg;
    cfg.name = "scale_relays_" + std::to_string(relays);
    cfg.async_depth = kAsyncDepth;
    cfg.shards = 8;
    cfg.relay_threads = relays;
    scaling.push_back(std::move(cfg));
  }
  const std::vector<PipelineRun> scaled = best_of_matrix(w, scaling, reps);
  for (std::size_t ci = 0; ci < scaling.size(); ++ci) {
    const PipelineRun& result = scaled[ci];
    row("%-28s %14.0f %10llu %10llu", scaling[ci].name.c_str(), result.pps,
        static_cast<unsigned long long>(result.sink_events),
        static_cast<unsigned long long>(result.sink_drops));
    json.add("bench_hotpath", scaling[ci].name, "packets_per_sec",
             result.pps, "pps");
    // All rows are lossless kBlock: whatever the thread topology, every
    // emitted event must be delivered exactly once.
    if (result.sink_events != total_events || result.sink_drops != 0) {
      std::printf("GATE FAILED: %s lost observer events (%llu/%llu)\n",
                  scaling[ci].name.c_str(),
                  static_cast<unsigned long long>(result.sink_events),
                  static_cast<unsigned long long>(total_events));
      return 1;
    }
  }
  row("gate: thread-scaling delivery exact OK");

  header("stage micro-benchmarks");
  bench_decode_stage(w, reps, json);
  bench_store_stage(smoke, reps, json);

  if (!json.write(JsonWriter::path_from(argc, argv), smoke)) return 1;
  return 0;
}

}  // namespace
}  // namespace pint::bench

int main(int argc, char** argv) { return pint::bench::run(argc, argv); }
