// Fig. 5 | Distributed coding schemes at d = k = 25 (full-block digests):
//  (a) expected number of missing hops vs packets received,
//  (b) probability of having decoded the whole path vs packets received,
// for Baseline (reservoir), XOR (p = 1/d) and Hybrid (interleaved).
// Also regenerates the text's summary statistics (Baseline median 89 / p99
// 189; Hybrid median 41 / p99 68) and the Theorem 3 sweep over k.
#include <algorithm>
#include <vector>

#include "bench/bench_util.h"
#include "coding/encoder.h"
#include "coding/peeling_decoder.h"
#include "coding/scheme.h"
#include "common/stats.h"

using namespace pint;

namespace {

struct Curve {
  std::vector<double> missing_at;  // E[missing hops] after n packets
  std::vector<double> decode_prob; // P[complete] after n packets
  std::vector<std::uint64_t> finish;  // packets to full decode per run
};

Curve run_scheme(const SchemeConfig& cfg, unsigned k, unsigned max_packets,
                 int runs, std::uint64_t seed) {
  Curve c;
  c.missing_at.assign(max_packets + 1, 0.0);
  c.decode_prob.assign(max_packets + 1, 0.0);
  for (int r = 0; r < runs; ++r) {
    GlobalHash root(seed + r);
    const InstanceHashes h = make_instance_hashes(root, 0);
    std::vector<std::uint64_t> blocks(k);
    for (unsigned i = 0; i < k; ++i) blocks[i] = mix64(seed * 97 + r * 31 + i);
    PeelingDecoder dec(k, cfg, h);
    bool finished = false;
    for (unsigned n = 1; n <= max_packets; ++n) {
      dec.add_packet(n, encode_path(cfg, h, n, blocks, 0));
      c.missing_at[n] += dec.missing_count();
      c.decode_prob[n] += dec.complete() ? 1.0 : 0.0;
      if (dec.complete() && !finished) {
        c.finish.push_back(n);
        finished = true;
      }
    }
    if (!finished) {
      // Keep feeding until complete for the finish statistics.
      PacketId n = max_packets;
      while (!dec.complete()) {
        ++n;
        dec.add_packet(n, encode_path(cfg, h, n, blocks, 0));
      }
      c.finish.push_back(n);
    }
  }
  for (auto& m : c.missing_at) m /= runs;
  for (auto& p : c.decode_prob) p /= runs;
  return c;
}

}  // namespace

int main() {
  const unsigned k = 25;
  const unsigned max_packets = 200;
  const int runs = 400;

  const Curve base =
      run_scheme(make_baseline_scheme(), k, max_packets, runs, 11000);
  const Curve xorc =
      run_scheme(make_xor_scheme(k), k, max_packets, runs, 12000);
  const Curve hyb =
      run_scheme(make_hybrid_scheme(k), k, max_packets, runs, 13000);

  bench::header("Fig. 5a | E[missing hops] vs packets (d = k = 25)");
  bench::row("%-10s %-10s %-10s %-10s", "packets", "Baseline", "XOR", "Hybrid");
  for (unsigned n = 25; n <= max_packets; n += 25) {
    bench::row("%-10u %-10.2f %-10.2f %-10.2f", n, base.missing_at[n],
               xorc.missing_at[n], hyb.missing_at[n]);
  }

  bench::header("Fig. 5b | decode probability vs packets (d = k = 25)");
  bench::row("%-10s %-10s %-10s %-10s", "packets", "Baseline", "XOR", "Hybrid");
  for (unsigned n = 25; n <= max_packets; n += 25) {
    bench::row("%-10u %-10.2f %-10.2f %-10.2f", n, base.decode_prob[n],
               xorc.decode_prob[n], hyb.decode_prob[n]);
  }

  bench::header("Section 4.2 text | packets to full decode at k = 25");
  bench::row("%-10s %-10s %-10s", "scheme", "median", "p99");
  bench::row("%-10s %-10lld %-10lld", "Baseline",
             static_cast<long long>(percentile(base.finish, 0.5)),
             static_cast<long long>(percentile(base.finish, 0.99)));
  bench::row("%-10s %-10lld %-10lld", "XOR",
             static_cast<long long>(percentile(xorc.finish, 0.5)),
             static_cast<long long>(percentile(xorc.finish, 0.99)));
  bench::row("%-10s %-10lld %-10lld", "Hybrid",
             static_cast<long long>(percentile(hyb.finish, 0.5)),
             static_cast<long long>(percentile(hyb.finish, 0.99)));
  bench::row("paper: Baseline 89 / 189, Hybrid 41 / 68.");

  bench::header("Theorem 3 | multi-layer packets-to-decode scales ~k loglog*k");
  bench::row("%-8s %-12s %-16s", "k", "avg packets", "packets / k");
  for (unsigned kk : {5u, 10u, 25u, 50u, 100u}) {
    const Curve ml =
        run_scheme(make_multilayer_scheme(kk), kk, 1, 60, 50000 + kk);
    const double avg = mean(ml.finish);
    bench::row("%-8u %-12.1f %-16.2f", kk, avg, avg / kk);
  }
  return 0;
}
