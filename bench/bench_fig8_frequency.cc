// Fig. 8 | Running the PINT congestion-control query on only a p-fraction of
// packets (p = 1, 1/16, 1/256): 95th-percentile slowdown per flow-size
// decile on web-search and Hadoop workloads at 50% load. ACKs without the
// query simply carry no feedback; HPCC updates less often.
#include "bench/bench_util.h"
#include "bench/sim_harness.h"

using namespace pint;
using namespace pint::bench;

namespace {

HarnessResult run_p(double p, const FlowSizeDist& dist, std::uint64_t seed) {
  HarnessConfig hc;
  hc.load = 0.5;
  hc.traffic_duration = 12 * kMilli;
  hc.drain_horizon = 500 * kMilli;
  hc.fat_tree_k = 4;
  hc.seed = seed;
  hc.sim.transport = TransportKind::kHpcc;
  hc.sim.telemetry = TelemetryMode::kPint;
  hc.sim.pint_bit_budget = 8;
  hc.sim.pint_frequency = p;
  hc.sim.host_bandwidth_bps = 10e9;
  hc.sim.fabric_bandwidth_bps = 40e9;
  hc.sim.hpcc.base_rtt = 20 * kMicro;
  return run_harness(hc, dist);
}

void table(const char* title, const FlowSizeDist& dist, std::uint64_t seed) {
  bench::header(title);
  const HarnessResult p1 = run_p(1.0, dist, seed);
  const HarnessResult p16 = run_p(1.0 / 16.0, dist, seed);
  const HarnessResult p256 = run_p(1.0 / 256.0, dist, seed);
  bench::row("%-22s | %-10s %-10s %-10s", "flow size bucket", "p=1",
             "p=1/16", "p=1/256");
  const auto& d = dist.deciles();
  Bytes lo = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const Bytes hi = d[i];
    bench::row("%-10lld-%-11lld | %-10.2f %-10.2f %-10.2f",
               static_cast<long long>(lo), static_cast<long long>(hi),
               p1.slowdown_quantile(0.95, lo, hi + 1),
               p16.slowdown_quantile(0.95, lo, hi + 1),
               p256.slowdown_quantile(0.95, lo, hi + 1));
    lo = hi + 1;
  }
}

}  // namespace

int main() {
  table("Fig. 8a | PINT-HPCC at query frequency p (web search, 50% load)",
        FlowSizeDist::web_search(), 51);
  table("Fig. 8b | PINT-HPCC at query frequency p (Hadoop, 50% load)",
        FlowSizeDist::hadoop(), 61);
  bench::row(
      "\nexpected shape (paper): p=1/16 is nearly indistinguishable from\n"
      "p=1 (several feedback packets still arrive per RTT); p=1/256 hurts\n"
      "short flows (feedback slower than an RTT) and very long flows\n"
      "(slow reconvergence).");
  return 0;
}
