// Sharded-sink scaling: decode throughput of the Recording Module at
// 1/2/4/8 shards versus the single-threaded sink, on the paper's Section
// 6.4 three-query mix. The sharded pipeline must be a pure speedup: before
// timing, the harness verifies the merged per-packet SinkReport stream is
// byte-identical to the single-threaded sink's and spot-checks merged
// inference. Expect near-linear scaling while shards <= physical cores
// (the partition/submit stage is a few ns/packet and stays serial).
#include <chrono>
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "pint/framework.h"
#include "pint/report_codec.h"
#include "pint/sharded_sink.h"

namespace pint {
namespace {

constexpr unsigned kHops = 5;
std::size_t kFlows = 16384;      // shrunk in smoke mode
std::size_t kPacketsPerFlow = 16;
constexpr std::size_t kSubmitBatch = 8192;

PintFramework::Builder mix_builder() {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e8;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 64; ++s) universe.push_back(s);
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0x5CA1E)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
          cc_tuning));
  return builder;
}

std::vector<Packet> make_traffic() {
  const auto network = mix_builder().build_or_throw();
  std::vector<Packet> packets;
  packets.reserve(kFlows * kPacketsPerFlow);
  PacketId next_id = 1;
  for (std::size_t j = 0; j < kPacketsPerFlow; ++j) {
    for (std::size_t f = 0; f < kFlows; ++f) {
      Packet p;
      p.id = next_id++;
      p.tuple.src_ip = 0x0A000000u + static_cast<std::uint32_t>(f);
      p.tuple.dst_ip = 0x0B000000u + static_cast<std::uint32_t>(f % 4096);
      p.tuple.src_port = static_cast<std::uint16_t>(f);
      p.tuple.dst_port = 443;
      packets.push_back(std::move(p));
    }
  }
  for (Packet& p : packets) {
    const std::size_t f = (p.id - 1) % kFlows;
    for (HopIndex i = 1; i <= kHops; ++i) {
      SwitchView view(static_cast<SwitchId>((f + i) % 64 + 1));
      view.set(metric::kHopLatencyNs, 500.0 * i + static_cast<double>(f % 97));
      view.set(metric::kLinkUtilization, 0.05 * i);
      network->at_switch(p, i, view);
    }
  }
  return packets;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<std::uint8_t> stream_bytes(std::span<const Packet> packets,
                                       std::span<const SinkReport> reports) {
  ReportEncoder enc;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    enc.add(packets[i].id, kHops, reports[i]);
  }
  return enc.finish();
}

double time_sharded(const PintFramework::Builder& builder,
                    std::span<const Packet> packets, unsigned shards) {
  ShardedSink sink(builder, shards);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t off = 0; off < packets.size(); off += kSubmitBatch) {
    const std::size_t n = std::min(kSubmitBatch, packets.size() - off);
    sink.submit(packets.subspan(off, n), kHops);
  }
  sink.flush();
  return seconds_since(t0);
}

}  // namespace
}  // namespace pint

int main(int argc, char** argv) {
  using namespace pint;
  const bool smoke = bench::smoke_mode(argc, argv);
  if (smoke) {
    kFlows = 1024;  // packets-per-flow stays 16 so the decode gate holds
  }
  bench::header(
      "Sharded sink scaling — Recording Module decode throughput\n"
      "(three-query mix, 16-bit budget; merged results verified identical\n"
      "to the single-threaded sink before timing)");
  if (smoke) bench::note_smoke();
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  const auto builder = mix_builder();
  const std::vector<Packet> packets = make_traffic();
  const double mpkts = static_cast<double>(packets.size()) / 1e6;
  std::printf("traffic: %zu flows x %zu packets = %zu packets, k=%u\n\n",
              kFlows, kPacketsPerFlow, packets.size(), kHops);

  // Correctness gate: merged sharded reports must be byte-identical to the
  // single-threaded sink's stream.
  {
    const auto baseline = builder.build_or_throw();
    std::vector<SinkReport> base_reports(packets.size());
    baseline->at_sink(std::span<const Packet>(packets), kHops, base_reports);

    ShardedSink sink(builder, 4);
    std::vector<SinkReport> sharded_reports(packets.size());
    sink.submit(packets, kHops, sharded_reports);
    sink.flush();

    if (stream_bytes(packets, sharded_reports) !=
        stream_bytes(packets, base_reports)) {
      std::printf("FAIL: sharded merged reports differ from baseline\n");
      return 1;
    }
    const FiveTuple probe = packets.front().tuple;
    const auto base_path =
        baseline->flow_path("path", baseline->flow_key_for("path", probe));
    if (sink.flow_path("path", probe) != base_path ||
        !base_path.has_value()) {
      std::printf("FAIL: merged inference differs from baseline\n");
      return 1;
    }
    std::printf("verified: merged reports byte-identical, inference equal\n\n");
  }

  // Single-threaded reference (no thread handoff at all).
  double single_s = 0.0;
  {
    const auto baseline = builder.build_or_throw();
    const auto t0 = std::chrono::steady_clock::now();
    baseline->at_sink(std::span<const Packet>(packets), kHops);
    single_s = seconds_since(t0);
  }
  bench::row("%-22s %10.3f s %10.2f Mpkts/s", "single-threaded",
             single_s, mpkts / single_s);

  double one_shard_s = 0.0;
  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    const double s = time_sharded(builder, packets, shards);
    if (shards == 1) one_shard_s = s;
    bench::row("%-22s %10.3f s %10.2f Mpkts/s   %.2fx vs 1 shard",
               (std::to_string(shards) + " shard(s)").c_str(), s,
               mpkts / s, one_shard_s / s);
  }
  std::printf(
      "\nNote: speedup tracks physical cores; on a 1-core host the sharded\n"
      "path only measures handoff overhead.\n");
  return 0;
}
