// Section 2 arithmetic: INT's on-wire overhead and serialization latency vs
// PINT's constant digest. Regenerates the numbers quoted in the text
// (28B..108B on 5 hops, % of MTU, 64b/66b latency at 10G/100G).
#include "bench/bench_util.h"
#include "packet/headers.h"
#include "pint/collection.h"

using namespace pint;

int main() {
  bench::header("Section 2 | INT packet overhead vs hops and values");
  bench::row("%-8s %-8s %-12s %-12s %-12s", "hops", "values", "INT bytes",
             "% of 1000B", "% of 1500B");
  for (unsigned hops : {1u, 3u, 5u, 10u, 30u}) {
    for (unsigned values : {1u, 2u, 3u, 5u}) {
      const IntHeaderSpec spec{values};
      const Bytes b = spec.overhead_bytes(hops);
      bench::row("%-8u %-8u %-12lld %-12.1f %-12.1f", hops, values,
                 static_cast<long long>(b), 100.0 * b / 1000.0,
                 100.0 * b / 1500.0);
    }
  }

  bench::header("Section 2 | PINT overhead is constant in path length");
  bench::row("%-12s %-12s %-12s", "bit budget", "bytes", "% of 1000B");
  for (unsigned bits : {1u, 4u, 8u, 16u, 32u}) {
    const PintHeaderSpec spec{bits};
    bench::row("%-12u %-12lld %-12.2f", bits,
               static_cast<long long>(spec.overhead_bytes()),
               100.0 * spec.overhead_bytes() / 1000.0);
  }

  bench::header("Section 2 | serialization latency of extra telemetry bytes");
  bench::row("%-12s %-14s %-14s", "extra bytes", "10G link [ns]",
             "100G link [ns]");
  for (Bytes extra : {2, 28, 48, 68, 88, 108}) {
    bench::row("%-12lld %-14.1f %-14.1f", static_cast<long long>(extra),
               serialization_delay_ns(extra, 10e9),
               serialization_delay_ns(extra, 100e9));
  }
  bench::row("\npaper: 48B at 10G ~ 76ns incl. MAC clocking; 100G ~ 6ns.");

  bench::header(
      "Section 2 item 3 | sink-to-collector traffic per reported packet");
  bench::row("%-10s %-20s %-20s %-8s", "hops", "INT report [B]",
             "PINT report [B]", "ratio");
  const CollectorReportSpec spec;
  for (unsigned hops : {3u, 5u, 10u, 30u}) {
    const Bytes i = int_report_bytes(spec, hops, 3);
    const Bytes p = pint_report_bytes(spec, 16);
    bench::row("%-10u %-20lld %-20lld %-8.1f", hops, static_cast<long long>(i),
               static_cast<long long>(p),
               static_cast<double>(i) / static_cast<double>(p));
  }
  bench::row("\nPINT reports are fixed-size (Confluo-friendly) and shrink\n"
             "collection traffic by the full per-hop stack.");
  return 0;
}
