// Appendices B/C | switch-feasible arithmetic: error of log2/exp2/multiply/
// divide built from MSB lookup + 2^q-entry tables, as a function of q.
// The paper's claim: q = 8 keeps errors below ~1%.
#include <cmath>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "dataplane/log_exp.h"

using namespace pint;

int main() {
  bench::header("Appendix C | lookup-table arithmetic error vs q");
  bench::row("%-4s | %-14s %-14s %-14s %-14s", "q", "log2 max err",
             "exp2 max rel%", "mul max rel%", "div max rel%");
  for (unsigned q : {4u, 6u, 8u, 10u, 12u}) {
    LogExpTables t(q);
    Rng rng(999 + q);
    double log_err = 0, exp_err = 0, mul_err = 0, div_err = 0;
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t x = 1 + rng.uniform_int(1ull << 32);
      const std::uint64_t y = 1 + rng.uniform_int(1ull << 16);
      log_err = std::max(log_err,
                         std::abs(t.log2(x) - std::log2(double(x))));
      const double e = rng.uniform(0.0, 20.0);
      exp_err = std::max(exp_err,
                         std::abs(t.exp2(e) / std::exp2(e) - 1.0) * 100);
      mul_err = std::max(
          mul_err, std::abs(t.multiply(x, y) / (double(x) * double(y)) - 1.0) *
                       100);
      div_err = std::max(
          div_err,
          std::abs(t.divide(x, y) / (double(x) / double(y)) - 1.0) * 100);
    }
    bench::row("%-4u | %-14.5f %-14.3f %-14.3f %-14.3f", q, log_err, exp_err,
               mul_err, div_err);
  }
  bench::row("\nexpected: errors shrink ~2x per extra q bit; q=8 is <1%%.");

  bench::header("Appendix B | HPCC EWMA utilization via log/exp tables");
  // U' = (T-tau)/T * U + qlen*tau/(B*T^2) + byte/(B*T), computed both in
  // floating point and through the lookup tables.
  LogExpTables t(8);
  const double T = 13e-6, B = 12.5e9;
  double worst = 0.0;
  Rng rng(31337);
  for (int i = 0; i < 20000; ++i) {
    const double U = rng.uniform(0.0, 1.2);
    const double tau = rng.uniform(0.0, T);
    // Queue lengths up to one bandwidth-delay product (~160KB at 100G/13us);
    // beyond that utilization saturates anyway.
    const double qlen = rng.uniform(0.0, B * T);
    const double byte = rng.uniform(64.0, 1500.0);
    const double exact = (T - tau) / T * U + qlen * tau / (B * T * T) +
                         byte / (B * T);
    // Table version: each product/quotient via log-exp on integer-scaled
    // operands (ns and bytes resolution).
    const auto ns = [](double s) {
      return static_cast<std::uint64_t>(s * 1e9) + 1;
    };
    const double term1 =
        U * t.divide(ns(T - tau), ns(T));  // host multiply by U is shift-ish
    const double term2 =
        t.multiply(static_cast<std::uint64_t>(qlen) + 1, ns(tau)) /
        (B * T * T * 1e9);
    const double term3 = byte / (B * T);
    const double approx = term1 + term2 + term3;
    worst = std::max(worst, std::abs(approx - exact));
  }
  bench::row("max absolute U error via tables: %.4f (paper target: ~1%%)",
             worst);
  return 0;
}
