// Shared helpers for the experiment harnesses: each bench binary regenerates
// one of the paper's tables/figures as aligned text rows (see the figure /
// experiment map in the root README.md).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

namespace pint::bench {

// True when the harness should run its tiny CI smoke configuration
// (`--smoke` on the command line, or PINT_BENCH_SMOKE=1 in the
// environment): a fraction of the full workload, finishing in seconds —
// just enough for CI to catch bit-rot in the bench code paths. Statistical
// conclusions from smoke runs are meaningless; every bench prints a note
// when smoke mode is active.
inline bool smoke_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") return true;
  }
  const char* env = std::getenv("PINT_BENCH_SMOKE");
  return env != nullptr && env[0] == '1';
}

// Standard banner so smoke-mode output is unmistakable in CI logs.
inline void note_smoke() {
  std::printf("[smoke mode: tiny workload, results not meaningful]\n");
}

inline void header(const std::string& title) {
  std::printf(
      "\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf(
      "==============================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

}  // namespace pint::bench
