// Shared helpers for the experiment harnesses: each bench binary regenerates
// one of the paper's tables/figures as aligned text rows (see the figure /
// experiment map in the root README.md).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace pint::bench {

inline void header(const std::string& title) {
  std::printf(
      "\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf(
      "==============================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

}  // namespace pint::bench
