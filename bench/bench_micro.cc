// Micro-benchmarks (google-benchmark): per-packet costs of the PINT
// primitives that run on the critical path — global hashing, digest encoding
// for each aggregation type, sink-side decode, and sketch insertion.
#include <benchmark/benchmark.h>

#include <numeric>

#include "coding/encoder.h"
#include "coding/hashed_decoder.h"
#include "coding/scheme.h"
#include "hash/global_hash.h"
#include "pint/dynamic_aggregation.h"
#include "pint/perpacket_aggregation.h"
#include "sketch/kll.h"

namespace pint {
namespace {

void BM_GlobalHashBits2(benchmark::State& state) {
  GlobalHash h(1);
  PacketId p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.bits2(++p, 5));
  }
}
BENCHMARK(BM_GlobalHashBits2);

void BM_EncodeStepStatic(benchmark::State& state) {
  const SchemeConfig cfg = make_multilayer_scheme(10);
  GlobalHash root(2);
  const InstanceHashes h = make_instance_hashes(root, 0);
  PacketId p = 0;
  Digest d = 0;
  for (auto _ : state) {
    d = encode_step(cfg, h, ++p, 3, d, 0xABCD, 8);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_EncodeStepStatic);

void BM_EncodeStepDynamic(benchmark::State& state) {
  DynamicAggregationConfig cfg;
  cfg.bits = 8;
  cfg.max_value = 1e6;
  DynamicAggregationQuery q(cfg, 3);
  PacketId p = 0;
  Digest d = 0;
  for (auto _ : state) {
    d = q.encode_step(++p, 4, d, 1234.5);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_EncodeStepDynamic);

void BM_EncodeStepPerPacket(benchmark::State& state) {
  PerPacketConfig cfg;
  cfg.bits = 8;
  cfg.max_value = 1e6;
  PerPacketQuery q(cfg, 4);
  PacketId p = 0;
  Digest d = 0;
  for (auto _ : state) {
    d = q.encode_step(++p, d, 4321.0);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_EncodeStepPerPacket);

void BM_HashedDecoderPacket(benchmark::State& state) {
  const unsigned k = static_cast<unsigned>(state.range(0));
  std::vector<std::uint64_t> universe(256);
  std::iota(universe.begin(), universe.end(), 1);
  std::vector<std::uint64_t> blocks(k);
  for (unsigned i = 0; i < k; ++i) blocks[i] = universe[(i * 31) % 256];
  HashedDecoderConfig cfg;
  cfg.k = k;
  cfg.bits = 8;
  cfg.instances = 1;
  cfg.scheme = make_multilayer_scheme(k);
  GlobalHash root(5);
  PacketId p = 0;
  // Recreate the decoder when complete so work stays representative.
  HashedPathDecoder dec(cfg, root, universe);
  for (auto _ : state) {
    if (dec.complete()) {
      state.PauseTiming();
      dec = HashedPathDecoder(cfg, root, universe);
      state.ResumeTiming();
    }
    ++p;
    const auto lanes = encode_path_multi(cfg.scheme, root, 1, p, blocks, 8);
    dec.add_packet(p, lanes);
  }
}
BENCHMARK(BM_HashedDecoderPacket)->Arg(5)->Arg(25)->Arg(59);

void BM_KllAdd(benchmark::State& state) {
  KllSketch s(200);
  double v = 0.0;
  for (auto _ : state) {
    s.add(v += 1.25);
  }
}
BENCHMARK(BM_KllAdd);

}  // namespace
}  // namespace pint

BENCHMARK_MAIN();
