// Bounded-memory Recording Module under a heavy-tailed workload, in two
// acts.
//
// Act 1 (ceiling table): a million-flow Zipf packet stream (a few
// elephants carry most packets, mice appear once or twice) decoded through
// frameworks built with several memory ceilings. For each ceiling the
// harness reports
//   * sink decode throughput (the eviction machinery's hot-path cost),
//   * Recording-Module occupancy: resident flows, used/peak bytes,
//     evictions — and checks the accounting invariant that peak usage
//     never exceeds the ceiling by more than one entry,
//   * re-decode accuracy: the fraction of the top-100 elephant flows whose
//     full path still decodes, even though mice churn keeps evicting idle
//     state (the paper's "one mostly cares about tracing large flows").
//
// Act 2 (policy matrix): the same Zipf churn at ONE ceiling, once per
// admission/eviction policy (lru / doorkeeper / tinylfu — pint/policy.h),
// followed by a mouse flood from a disjoint flow universe: one packet per
// mouse, many more distinct mice than the store can hold. Plain LRU admits
// every mouse and cycles the idle elephants out; the doorkeeper turns
// one-packet mice away at the door; TinyLFU additionally retains a
// high-frequency LRU tail over the low-frequency flow applying pressure.
// Per policy the matrix reports top-100 elephant retention after the
// flood, the re-decode rate after a short replay, evictions, resident
// flows, and the exact admission-shed count — and asserts the exactness
// invariant resident == created - evicted for every store (rejected
// admissions never half-create state).
//
// Run with --smoke (or PINT_BENCH_SMOKE=1) for the tiny CI configuration;
// pass --json=PATH (or PINT_BENCH_JSON) to emit pint-bench-v1 JSON for
// tools/check_bench_regression.py against
// bench/BENCH_memory_policy_baseline.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iterator>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "pint/framework.h"
#include "pint/policy.h"
#include "workload/zipf.h"

namespace pint {
namespace {

constexpr unsigned kHops = 5;
constexpr std::size_t kChunk = 8192;
constexpr double kZipfS = 1.05;
constexpr std::size_t kTopElephants = 100;
constexpr std::size_t kRedecodePackets = 64;  // replay per elephant, act 2

struct RunConfig {
  std::size_t flows = 0;
  std::size_t packets = 0;
  std::vector<std::size_t> ceilings;  // act 1 (0 = unbounded)
  std::size_t policy_ceiling = 0;     // act 2
  std::size_t flood_mice = 0;         // act 2: disjoint one-packet flows
};

PintFramework::Builder mix_builder(std::size_t memory_ceiling,
                                   StorePolicyKind policy) {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e8;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 64; ++s) universe.push_back(s);
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0x5CA1E)
      .memory_ceiling_bytes(memory_ceiling)
      .default_store_policy(policy)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
          cc_tuning));
  return builder;
}

FiveTuple tuple_of_flow(std::size_t flow) {
  FiveTuple t;
  t.src_ip = 0x0A000000u + static_cast<std::uint32_t>(flow);
  t.dst_ip = 0x0B000000u + static_cast<std::uint32_t>(flow);
  t.src_port = static_cast<std::uint16_t>(flow);
  t.dst_port = 443;
  return t;
}

// Encodes one packet of `flow` through the (unbounded) network replica.
void encode_packet(PintFramework& network, Packet& p, PacketId id,
                   std::size_t flow) {
  p.id = id;
  p.tuple = tuple_of_flow(flow);
  p.digests.clear();  // reused buffer: force fresh lane sizing
  p.hops_traversed = 0;
  for (HopIndex hop = 1; hop <= kHops; ++hop) {
    SwitchView view(static_cast<SwitchId>((flow + hop) % 64 + 1));
    view.set(metric::kHopLatencyNs,
             500.0 * hop + static_cast<double>(flow % 97));
    view.set(metric::kLinkUtilization, 0.05 * hop);
    network.at_switch(p, hop, view);
  }
}

struct RunResult {
  double decode_seconds = 0.0;  // churn phase only
  MemoryReport memory;
  double elephant_decode_rate = 0.0;
  bool peak_ok = true;
  // Act-2 extras (policy matrix).
  double retention = 0.0;  // top elephants still decodable after the flood
  double redecode = 0.0;   // ... after a kRedecodePackets replay each
  bool exact = true;       // resident == created - evicted, every store
};

std::vector<std::size_t> top_flows(const std::vector<std::uint32_t>& counts,
                                   std::size_t top) {
  std::vector<std::size_t> ranks(counts.size());
  std::iota(ranks.begin(), ranks.end(), 0);
  top = std::min(top, ranks.size());
  std::partial_sort(ranks.begin(), ranks.begin() + top, ranks.end(),
                    [&](std::size_t a, std::size_t b) {
                      return counts[a] > counts[b];
                    });
  ranks.resize(top);
  return ranks;
}

double decodable_fraction(const PintFramework& sink,
                          const std::vector<std::size_t>& flows) {
  std::size_t decoded = 0;
  for (const std::size_t f : flows) {
    const std::uint64_t fkey = sink.flow_key_for("path", tuple_of_flow(f));
    if (sink.flow_path("path", fkey).has_value()) ++decoded;
  }
  return flows.empty() ? 0.0
                       : static_cast<double>(decoded) /
                             static_cast<double>(flows.size());
}

// Streams `cfg.packets` Zipf-popular packets through a fresh framework
// built with `ceiling` and `policy`, in chunks (encode with a network
// replica, then time only the sink's batched decode). The Rng seed is
// fixed, so every ceiling and every policy sees the identical stream.
// With `flood_mice > 0`, follows up with one packet each from that many
// flows of a disjoint universe, then measures elephant retention and the
// post-replay re-decode rate (act 2).
RunResult run_one(const RunConfig& cfg, std::size_t ceiling,
                  StorePolicyKind policy, std::size_t flood_mice) {
  const auto network =
      mix_builder(0, StorePolicyKind::kLru).build_or_throw();
  const auto sink = mix_builder(ceiling, policy).build_or_throw();
  Rng rng(0x2F10C5);
  const ZipfDist zipf(cfg.flows, kZipfS);
  std::vector<std::uint32_t> counts(cfg.flows, 0);
  std::vector<Packet> batch(kChunk);
  RunResult out;

  PacketId next_id = 1;
  std::size_t remaining = cfg.packets;
  while (remaining > 0) {
    const std::size_t n = std::min(kChunk, remaining);
    remaining -= n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t f =
          static_cast<std::size_t>(zipf.sample(rng)) - 1;
      ++counts[f];
      encode_packet(*network, batch[i], next_id++, f);
    }
    const auto t0 = std::chrono::steady_clock::now();
    sink->at_sink(std::span<const Packet>(batch.data(), n), kHops);
    out.decode_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  const std::vector<std::size_t> elephants =
      top_flows(counts, kTopElephants);

  if (flood_mice > 0) {
    // Mouse flood: one packet per flow from a universe disjoint from the
    // churn flows. Under plain LRU each admitted mouse costs a resident
    // entry and pressures an idle elephant out of the tail.
    std::size_t sent = 0;
    while (sent < flood_mice) {
      const std::size_t n = std::min(kChunk, flood_mice - sent);
      for (std::size_t i = 0; i < n; ++i) {
        encode_packet(*network, batch[i], next_id++,
                      cfg.flows + sent + i);  // disjoint flow ids
      }
      sent += n;
      sink->at_sink(std::span<const Packet>(batch.data(), n), kHops);
    }
    out.retention = decodable_fraction(*sink, elephants);

    // Re-decode: the elephants come back with a short burst each; an
    // evicted flow must rebuild its decoder from scratch.
    for (const std::size_t f : elephants) {
      for (std::size_t i = 0; i < kRedecodePackets; ++i) {
        encode_packet(*network, batch[i], next_id++, f);
      }
      sink->at_sink(std::span<const Packet>(batch.data(), kRedecodePackets),
                    kHops);
    }
    out.redecode = decodable_fraction(*sink, elephants);
  }

  out.memory = sink->memory_report();
  for (const QueryMemoryStats& q : out.memory) {
    if (q.capacity_bytes > 0 &&
        q.peak_used_bytes > q.capacity_bytes + q.max_entry_bytes) {
      out.peak_ok = false;
    }
    // Exact accounting: nothing in this harness erases flows, so every
    // created entry is either still resident or was evicted — rejected
    // admissions must not have half-created state.
    if (q.flows != q.created - q.evictions) out.exact = false;
  }

  out.elephant_decode_rate = decodable_fraction(*sink, elephants);
  return out;
}

}  // namespace
}  // namespace pint

int main(int argc, char** argv) {
  using namespace pint;
  const bool smoke = bench::smoke_mode(argc, argv);
  bench::JsonWriter json;
  RunConfig cfg;
  if (smoke) {
    cfg.flows = 2000;
    cfg.packets = 10000;
    cfg.ceilings = {0, 512u << 10, 128u << 10};
    // Big enough that the top-100 elephants fit comfortably, small enough
    // that the flood cycles a plain-LRU store many times over.
    cfg.policy_ceiling = 2u << 20;
    cfg.flood_mice = 20'000;
  } else {
    cfg.flows = 1'000'000;
    cfg.packets = 4'000'000;
    // Unbounded is omitted: a million resident decoders+recorders is
    // multiple GB — exactly the OOM this module exists to prevent.
    cfg.ceilings = {64u << 20, 16u << 20, 4u << 20};
    cfg.policy_ceiling = 64u << 20;
    cfg.flood_mice = 1'500'000;
  }
  const double mpkts = static_cast<double>(cfg.packets) / 1e6;

  bench::header(
      "Bounded-memory Recording Module — Zipf flow churn vs ceiling\n"
      "(three-query mix; decode throughput, occupancy/evictions, and\n"
      "top-100 elephant path re-decode rate at each memory ceiling)");
  if (smoke) bench::note_smoke();
  std::printf("traffic: %zu flows, %zu packets, Zipf s=%.2f, k=%u\n\n",
              cfg.flows, cfg.packets, kZipfS, kHops);
  bench::row("%-12s %11s %9s %9s %9s %10s %9s %6s", "ceiling", "Mpkts/s",
             "resident", "used MB", "peak MB", "evictions", "top100", "peak");

  bool all_ok = true;
  // JSON series are named by pressure tier, not absolute size: the smoke
  // and full ceiling lists differ by construction (ceilings scale with the
  // workload), and tier names keep the series structurally comparable
  // across modes for tools/check_bench_regression.py.
  static const char* const kTierNames[] = {"ceiling_roomy", "ceiling_mid",
                                           "ceiling_tight"};
  for (std::size_t tier = 0; tier < cfg.ceilings.size(); ++tier) {
    const std::size_t ceiling = cfg.ceilings[tier];
    const RunResult r =
        run_one(cfg, ceiling, StorePolicyKind::kLru, /*flood_mice=*/0);
    all_ok = all_ok && r.peak_ok && r.exact;
    char label[32];
    if (ceiling == 0) {
      std::snprintf(label, sizeof label, "unbounded");
    } else if (ceiling >= (1u << 20)) {
      std::snprintf(label, sizeof label, "%zu MiB", ceiling >> 20);
    } else {
      std::snprintf(label, sizeof label, "%zu KiB", ceiling >> 10);
    }
    std::size_t peak = 0;
    for (const QueryMemoryStats& q : r.memory) peak += q.peak_used_bytes;
    bench::row("%-12s %11.2f %9llu %9.1f %9.1f %10llu %8.0f%% %6s", label,
               mpkts / r.decode_seconds,
               static_cast<unsigned long long>(r.memory.total.flows),
               static_cast<double>(r.memory.total.used_bytes) / (1 << 20),
               static_cast<double>(peak) / (1 << 20),
               static_cast<unsigned long long>(r.memory.total.evictions),
               100.0 * r.elephant_decode_rate, r.peak_ok ? "ok" : "FAIL");
    const std::string config =
        tier < std::size(kTierNames) ? kTierNames[tier]
                                     : "ceiling_" + std::to_string(tier);
    json.add("bench_memory_bound", config, "decode_mpkts_per_sec",
             mpkts / r.decode_seconds, "Mpps", true);
    json.add("bench_memory_bound", config, "top100_decode_pct",
             100.0 * r.elephant_decode_rate, "pct", true);
    json.add("bench_memory_bound", config, "evictions",
             static_cast<double>(r.memory.total.evictions), "count", false);
  }
  std::printf(
      "\npeak column checks peak_used <= ceiling + one entry per store;\n"
      "top100 = fraction of the 100 largest flows with a fully decoded "
      "path.\n");

  bench::header(
      "Store-policy matrix — elephant retention through a mouse flood\n"
      "(same Zipf churn at one ceiling per policy, then one packet each\n"
      "from more distinct mice than the store can hold; pint/policy.h)");
  std::printf("ceiling: %zu KiB, flood: %zu one-packet mice, "
              "replay: %zu pkts/elephant\n\n",
              cfg.policy_ceiling >> 10, cfg.flood_mice, kRedecodePackets);
  bench::row("%-12s %11s %10s %10s %10s %10s %10s %6s", "policy", "Mpkts/s",
             "retention", "redecode", "evictions", "resident", "rejected",
             "exact");

  struct PolicyRow {
    StorePolicyKind kind;
    RunResult result;
  };
  std::vector<PolicyRow> rows;
  for (const StorePolicyKind kind :
       {StorePolicyKind::kLru, StorePolicyKind::kDoorkeeper,
        StorePolicyKind::kTinyLfu}) {
    PolicyRow row{kind,
                  run_one(cfg, cfg.policy_ceiling, kind, cfg.flood_mice)};
    const RunResult& r = row.result;
    all_ok = all_ok && r.peak_ok && r.exact;
    bench::row("%-12s %11.2f %9.0f%% %9.0f%% %10llu %10llu %10llu %6s",
               std::string(to_string(kind)).c_str(),
               mpkts / r.decode_seconds, 100.0 * r.retention,
               100.0 * r.redecode,
               static_cast<unsigned long long>(r.memory.total.evictions),
               static_cast<unsigned long long>(r.memory.total.flows),
               static_cast<unsigned long long>(
                   r.memory.total.admissions_rejected),
               r.exact ? "ok" : "FAIL");
    const std::string config = "policy_" + std::string(to_string(kind));
    json.add("bench_memory_bound", config, "decode_mpkts_per_sec",
             mpkts / r.decode_seconds, "Mpps", true);
    json.add("bench_memory_bound", config, "elephant_retention_pct",
             100.0 * r.retention, "pct", true);
    json.add("bench_memory_bound", config, "top100_redecode_pct",
             100.0 * r.redecode, "pct", true);
    json.add("bench_memory_bound", config, "evictions",
             static_cast<double>(r.memory.total.evictions), "count", false);
    json.add("bench_memory_bound", config, "resident_flows",
             static_cast<double>(r.memory.total.flows), "count", true);
    json.add("bench_memory_bound", config, "admissions_rejected",
             static_cast<double>(r.memory.total.admissions_rejected),
             "count", false);
    rows.push_back(std::move(row));
  }
  std::printf(
      "\nretention = top-100 elephants still decodable right after the "
      "flood;\nredecode = after each elephant replays %zu packets; "
      "rejected = flows\nshed at admission (exact: resident == created - "
      "evicted everywhere).\n",
      kRedecodePackets);

  // The point of the matrix: frequency-aware admission must beat plain
  // LRU at keeping elephants decodable through mouse churn.
  const double lru_retention = rows[0].result.retention;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].result.retention <= lru_retention) {
      std::printf("FAIL: %s retention (%.0f%%) does not beat lru "
                  "(%.0f%%)\n",
                  std::string(to_string(rows[i].kind)).c_str(),
                  100.0 * rows[i].result.retention, 100.0 * lru_retention);
      all_ok = false;
    }
  }

  if (!all_ok) {
    std::printf("FAIL: ceiling overshoot, inexact accounting, or a policy "
                "that does not beat LRU\n");
    return 1;
  }
  return json.write(bench::JsonWriter::path_from(argc, argv), smoke) ? 0 : 1;
}
