// Bounded-memory Recording Module under a heavy-tailed workload: a
// million-flow Zipf packet stream (a few elephants carry most packets,
// mice appear once or twice) decoded through frameworks built with several
// memory ceilings. For each ceiling the harness reports
//   * sink decode throughput (the eviction machinery's hot-path cost),
//   * Recording-Module occupancy: resident flows, used/peak bytes,
//     evictions — and checks the accounting invariant that peak usage
//     never exceeds the ceiling by more than one entry,
//   * re-decode accuracy: the fraction of the top-100 elephant flows whose
//     full path still decodes, even though mice churn keeps evicting idle
//     state (the paper's "one mostly cares about tracing large flows").
// Run with --smoke (or PINT_BENCH_SMOKE=1) for the tiny CI configuration.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <span>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "pint/framework.h"
#include "workload/zipf.h"

namespace pint {
namespace {

constexpr unsigned kHops = 5;
constexpr std::size_t kChunk = 8192;
constexpr double kZipfS = 1.05;
constexpr std::size_t kTopElephants = 100;

struct RunConfig {
  std::size_t flows = 0;
  std::size_t packets = 0;
  std::vector<std::size_t> ceilings;  // 0 = unbounded
};

PintFramework::Builder mix_builder(std::size_t memory_ceiling) {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e8;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 64; ++s) universe.push_back(s);
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0x5CA1E)
      .memory_ceiling_bytes(memory_ceiling)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
          cc_tuning));
  return builder;
}

FiveTuple tuple_of_flow(std::size_t flow) {
  FiveTuple t;
  t.src_ip = 0x0A000000u + static_cast<std::uint32_t>(flow);
  t.dst_ip = 0x0B000000u + static_cast<std::uint32_t>(flow);
  t.src_port = static_cast<std::uint16_t>(flow);
  t.dst_port = 443;
  return t;
}

struct RunResult {
  double decode_seconds = 0.0;
  MemoryReport memory;
  double elephant_decode_rate = 0.0;
  bool peak_ok = true;
};

// Streams `cfg.packets` Zipf-popular packets through a fresh framework
// built with `ceiling`, in chunks (encode with a network replica, then
// time only the sink's batched decode). The Rng seed is fixed, so every
// ceiling sees the identical packet stream.
RunResult run_ceiling(const RunConfig& cfg, std::size_t ceiling) {
  const auto network = mix_builder(0).build_or_throw();
  const auto sink = mix_builder(ceiling).build_or_throw();
  Rng rng(0x2F10C5);
  const ZipfDist zipf(cfg.flows, kZipfS);
  std::vector<std::uint32_t> counts(cfg.flows, 0);
  std::vector<Packet> batch(kChunk);
  RunResult out;

  PacketId next_id = 1;
  std::size_t remaining = cfg.packets;
  while (remaining > 0) {
    const std::size_t n = std::min(kChunk, remaining);
    remaining -= n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t f =
          static_cast<std::size_t>(zipf.sample(rng)) - 1;
      ++counts[f];
      Packet& p = batch[i];
      p.id = next_id++;
      p.tuple = tuple_of_flow(f);
      p.digests.clear();  // reused buffer: force fresh lane sizing
      p.hops_traversed = 0;
      for (HopIndex hop = 1; hop <= kHops; ++hop) {
        SwitchView view(static_cast<SwitchId>((f + hop) % 64 + 1));
        view.set(metric::kHopLatencyNs,
                 500.0 * hop + static_cast<double>(f % 97));
        view.set(metric::kLinkUtilization, 0.05 * hop);
        network->at_switch(p, hop, view);
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    sink->at_sink(std::span<const Packet>(batch.data(), n), kHops);
    out.decode_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  out.memory = sink->memory_report();
  for (const QueryMemoryStats& q : out.memory) {
    if (q.capacity_bytes > 0 &&
        q.peak_used_bytes > q.capacity_bytes + q.max_entry_bytes) {
      out.peak_ok = false;
    }
  }

  // Re-decode accuracy over the top elephants by true packet count.
  std::vector<std::size_t> ranks(cfg.flows);
  std::iota(ranks.begin(), ranks.end(), 0);
  const std::size_t top = std::min(kTopElephants, cfg.flows);
  std::partial_sort(ranks.begin(), ranks.begin() + top, ranks.end(),
                    [&](std::size_t a, std::size_t b) {
                      return counts[a] > counts[b];
                    });
  std::size_t decoded = 0;
  for (std::size_t i = 0; i < top; ++i) {
    const std::uint64_t fkey =
        sink->flow_key_for("path", tuple_of_flow(ranks[i]));
    if (sink->flow_path("path", fkey).has_value()) ++decoded;
  }
  out.elephant_decode_rate =
      static_cast<double>(decoded) / static_cast<double>(top);
  return out;
}

}  // namespace
}  // namespace pint

int main(int argc, char** argv) {
  using namespace pint;
  const bool smoke = bench::smoke_mode(argc, argv);
  RunConfig cfg;
  if (smoke) {
    cfg.flows = 2000;
    cfg.packets = 10000;
    cfg.ceilings = {0, 512u << 10, 128u << 10};
  } else {
    cfg.flows = 1'000'000;
    cfg.packets = 4'000'000;
    // Unbounded is omitted: a million resident decoders+recorders is
    // multiple GB — exactly the OOM this module exists to prevent.
    cfg.ceilings = {64u << 20, 16u << 20, 4u << 20};
  }

  bench::header(
      "Bounded-memory Recording Module — Zipf flow churn vs ceiling\n"
      "(three-query mix; decode throughput, occupancy/evictions, and\n"
      "top-100 elephant path re-decode rate at each memory ceiling)");
  if (smoke) bench::note_smoke();
  std::printf("traffic: %zu flows, %zu packets, Zipf s=%.2f, k=%u\n\n",
              cfg.flows, cfg.packets, kZipfS, kHops);
  bench::row("%-12s %11s %9s %9s %9s %10s %9s %6s", "ceiling", "Mpkts/s",
             "resident", "used MB", "peak MB", "evictions", "top100", "peak");

  const double mpkts = static_cast<double>(cfg.packets) / 1e6;
  bool all_ok = true;
  for (const std::size_t ceiling : cfg.ceilings) {
    const RunResult r = run_ceiling(cfg, ceiling);
    all_ok = all_ok && r.peak_ok;
    char label[32];
    if (ceiling == 0) {
      std::snprintf(label, sizeof label, "unbounded");
    } else if (ceiling >= (1u << 20)) {
      std::snprintf(label, sizeof label, "%zu MiB", ceiling >> 20);
    } else {
      std::snprintf(label, sizeof label, "%zu KiB", ceiling >> 10);
    }
    std::size_t peak = 0;
    for (const QueryMemoryStats& q : r.memory) peak += q.peak_used_bytes;
    bench::row("%-12s %11.2f %9llu %9.1f %9.1f %10llu %8.0f%% %6s", label,
               mpkts / r.decode_seconds,
               static_cast<unsigned long long>(r.memory.total.flows),
               static_cast<double>(r.memory.total.used_bytes) / (1 << 20),
               static_cast<double>(peak) / (1 << 20),
               static_cast<unsigned long long>(r.memory.total.evictions),
               100.0 * r.elephant_decode_rate, r.peak_ok ? "ok" : "FAIL");
  }
  std::printf(
      "\npeak column checks peak_used <= ceiling + one entry per store;\n"
      "top100 = fraction of the 100 largest flows with a fully decoded "
      "path.\n");
  if (!all_ok) {
    std::printf("FAIL: a store exceeded its ceiling by more than one "
                "entry\n");
    return 1;
  }
  return 0;
}
